// The flight recorder (src/obs/):
//   * probe determinism — the contract that probes observe and never steer:
//     for a given seed, running any engine with a full run_probe is
//     bit-identical (stabilized/steps/leader/census) to the default
//     null_probe run, across the fast/star × {clique, cycle, star} ×
//     {u8, u16, u32} matrix and the well-mixed batch engine;
//   * probe accounting — steps split into silent vs active, census samples
//     ascend and respect the stride, the thinning cap bounds the vector;
//   * histogram bucket boundaries (bucket_of == bit_width) and merging;
//   * metrics JSON/text serialisation, sidecar merge, torn-tail tolerance;
//   * catapult trace JSON shape, sidecar round-trip, torn-tail drop;
//   * the leveled logger's strict level parser.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/beauquier.h"
#include "core/fast_election.h"
#include "core/star_protocol.h"
#include "engine/engine.h"
#include "engine/wellmixed/wellmixed.h"
#include "graph/generators.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/probe.h"
#include "obs/trace.h"

namespace pp {
namespace {

// ---------------------------------------------------------------------------
// Probe determinism: enabling probes never changes the simulation.

std::vector<std::pair<std::string, graph>> probe_families() {
  std::vector<std::pair<std::string, graph>> fams;
  fams.emplace_back("clique", make_clique(24));
  fams.emplace_back("cycle", make_cycle(33));
  fams.emplace_back("star", make_star(28));
  return fams;
}

template <typename P>
void expect_probe_invisible(const P& proto, const sim_options& options,
                            std::uint64_t seed_base) {
  for (const auto& [name, g] : probe_families()) {
    // Which widths fit is a property of the closed table.
    compiled_protocol<P> compiled(proto);
    for (node_id v = 0; v < g.num_nodes(); ++v) {
      compiled.intern(proto.initial_state(v));
    }
    ASSERT_TRUE(compiled.close(kEngineClosureBudget)) << name;
    std::vector<int> widths{16, 32};
    if (compiled.num_states() <= 256 && compiled.deltas_fit_nibble()) {
      widths.push_back(8);
    }

    rng seed(seed_base);
    for (std::uint64_t t = 0; t < 3; ++t) {
      for (const int bits : widths) {
        const tuned_runner<P> runner(proto, g, {vertex_order::natural, bits});
        const election_result plain = runner.run(seed.fork(t), options);
        obs::run_probe probe(64);
        const election_result probed =
            runner.run(seed.fork(t), options, &probe);
        ASSERT_EQ(plain.stabilized, probed.stabilized)
            << name << " u" << bits << " trial " << t;
        ASSERT_EQ(plain.steps, probed.steps)
            << name << " u" << bits << " trial " << t;
        ASSERT_EQ(plain.leader, probed.leader)
            << name << " u" << bits << " trial " << t;
        ASSERT_EQ(plain.distinct_states_used, probed.distinct_states_used)
            << name << " u" << bits << " trial " << t;

        // The probe's own books must agree with the result.
        const obs::probe_stats& st = probe.stats();
        ASSERT_EQ(st.steps, probed.steps) << name << " u" << bits;
        ASSERT_LE(st.active_steps, st.steps) << name << " u" << bits;
        ASSERT_EQ(st.silent_steps(), st.steps - st.active_steps);
        ASSERT_GE(st.predicate_evals, 1u) << name << " u" << bits;
        std::uint64_t prev = 0;
        for (const obs::census_sample& s : st.census) {
          ASSERT_GT(s.step, prev) << name << " u" << bits;
          ASSERT_LE(s.step, probed.steps) << name << " u" << bits;
          prev = s.step;
        }
      }
    }
  }
}

TEST(ProbeDeterminism, FastAcrossFamiliesAndWidths) {
  expect_probe_invisible(fast_protocol(fast_params{}), {}, 41);
}

TEST(ProbeDeterminism, FastWithCensusAcrossFamiliesAndWidths) {
  expect_probe_invisible(fast_protocol(fast_params{}), {.state_census = true},
                         42);
}

TEST(ProbeDeterminism, StarAcrossFamiliesAndWidths) {
  // max_steps caps the non-stabilizing star runs (two-leader deadlocks on
  // general graphs); the probe must be invisible at the cap too.
  expect_probe_invisible(star_protocol{}, {.max_steps = 20000}, 43);
}

TEST(ProbeDeterminism, LazyU32FallbackEngine) {
  // run_compiled (the lazy u32 fallback) probed directly, with table-fill
  // accounting: every pair class compiled during the run is counted.
  const fast_protocol proto(fast_params{});
  const graph g = make_cycle(33);
  rng seed(44);
  for (std::uint64_t t = 0; t < 3; ++t) {
    const election_result plain = run_until_stable_fast(proto, g, seed.fork(t));
    compiled_protocol<fast_protocol> compiled(proto);
    const edge_endpoints edges(g);
    obs::run_probe probe(128);
    const election_result probed =
        run_compiled(compiled, edges, g, seed.fork(t), {}, nullptr, &probe);
    ASSERT_EQ(plain.steps, probed.steps) << "trial " << t;
    ASSERT_EQ(plain.leader, probed.leader) << "trial " << t;
    ASSERT_EQ(probe.stats().steps, probed.steps);
    ASSERT_GT(probe.stats().table_fills, 0u);
    ASSERT_GT(probe.stats().rng_draws, 0u);
  }
}

TEST(ProbeDeterminism, WellmixedBatchEngine) {
  // The multiset batch engine credits steps batch-wise; with a probe the
  // result is still bit-identical and the step accounting exact.
  const std::uint64_t n = 4096;
  const fast_protocol proto(fast_params::practical_clique(n));
  rng seed(45);
  for (std::uint64_t t = 0; t < 3; ++t) {
    const election_result plain = run_wellmixed(proto, n, seed.fork(t), {});
    obs::run_probe probe(1024);
    const election_result probed =
        run_wellmixed(proto, n, seed.fork(t), {}, &probe);
    ASSERT_EQ(plain.stabilized, probed.stabilized) << "trial " << t;
    ASSERT_EQ(plain.steps, probed.steps) << "trial " << t;
    ASSERT_EQ(probe.stats().steps, probed.steps);
    ASSERT_GT(probe.stats().batches, 0u);
    ASSERT_GE(probe.stats().predicate_evals, 1u);
  }
}

TEST(ProbeDeterminism, WellmixedSixProtocol) {
  const std::uint64_t n = 512;
  const beauquier_protocol proto(static_cast<node_id>(n));
  rng seed(46);
  const election_result plain = run_wellmixed(proto, n, seed.fork(0), {});
  obs::run_probe probe(256);
  const election_result probed =
      run_wellmixed(proto, n, seed.fork(0), {}, &probe);
  ASSERT_EQ(plain.steps, probed.steps);
  ASSERT_EQ(plain.stabilized, probed.stabilized);
}

TEST(RunProbe, StrideControlsSampling) {
  obs::run_probe probe(10);
  const std::int64_t totals[2] = {3, 4};
  EXPECT_FALSE(probe.want_census(9));
  EXPECT_TRUE(probe.want_census(10));
  EXPECT_TRUE(probe.want_census(25));  // first step past a missed multiple
  probe.on_census(25, totals, 2);
  EXPECT_FALSE(probe.want_census(29));  // next target realigned to 30
  EXPECT_TRUE(probe.want_census(30));
  ASSERT_EQ(probe.stats().census.size(), 1u);
  EXPECT_EQ(probe.stats().census[0].step, 25u);
  EXPECT_EQ(probe.stats().census[0].totals[0], 3);
  EXPECT_EQ(probe.stats().census[0].totals[1], 4);
}

TEST(RunProbe, ThinningBoundsTheSampleVector) {
  obs::run_probe probe(1);
  const std::int64_t totals[1] = {1};
  for (std::uint64_t s = 1; s <= 3 * obs::run_probe::kMaxSamples; ++s) {
    if (probe.want_census(s)) probe.on_census(s, totals, 1);
  }
  EXPECT_LT(probe.stats().census.size(), obs::run_probe::kMaxSamples);
  EXPECT_GT(probe.stride(), 1u);  // doubled at least once
  std::uint64_t prev = 0;
  for (const obs::census_sample& s : probe.stats().census) {
    ASSERT_GT(s.step, prev);
    prev = s.step;
  }
}

// ---------------------------------------------------------------------------
// Window ring: fixed-interval streaming stats whose boundaries live purely
// on the deterministic step counter — bit-identical across reruns.

TEST(ProbeWindows, BoundariesLiveOnTheStepCounter) {
  obs::run_probe probe(16, 100);
  for (int i = 0; i < 250; ++i) probe.on_step(i % 2 == 0);
  ASSERT_EQ(probe.windows().size(), 2u);
  EXPECT_EQ(probe.windows()[0].index, 0u);
  EXPECT_EQ(probe.windows()[0].steps, 100u);
  EXPECT_EQ(probe.windows()[0].active_steps, 50u);
  EXPECT_EQ(probe.windows()[1].index, 1u);
  EXPECT_EQ(probe.windows()[1].steps, 100u);
  EXPECT_DOUBLE_EQ(probe.windows()[0].silent_fraction(), 0.5);
  // finish() closes the trailing 50-step partial; a second call is a no-op.
  probe.finish();
  ASSERT_EQ(probe.windows().size(), 3u);
  EXPECT_EQ(probe.windows()[2].steps, 50u);
  EXPECT_EQ(probe.stats().windows_closed, 3u);
  probe.finish();
  EXPECT_EQ(probe.stats().windows_closed, 3u);
}

TEST(ProbeWindows, BatchOvershootClosesEmptyWindows) {
  // A batch spanning several boundaries is attributed to the window where
  // it completes; the overshot windows close with zero steps.
  obs::run_probe probe(0, 100);
  probe.on_steps(30, 10);
  ASSERT_TRUE(probe.windows().empty());
  probe.on_steps(350, 100);  // counter jumps 30 -> 380: closes w0, w1, w2
  ASSERT_EQ(probe.windows().size(), 3u);
  EXPECT_EQ(probe.windows()[0].steps, 380u);
  EXPECT_EQ(probe.windows()[0].active_steps, 110u);
  EXPECT_EQ(probe.windows()[1].steps, 0u);
  EXPECT_EQ(probe.windows()[2].steps, 0u);
  probe.on_steps(20, 0);  // 400 exactly: the boundary step closes w3
  ASSERT_EQ(probe.windows().size(), 4u);
  EXPECT_EQ(probe.windows()[3].steps, 20u);
  probe.finish();  // nothing accumulated past the last boundary
  EXPECT_EQ(probe.stats().windows_closed, 4u);
}

TEST(ProbeWindows, RingDropsOldestWindowAtTheCap) {
  obs::run_probe probe(0, 1);
  const std::uint64_t total = obs::run_probe::kMaxWindows + 10;
  for (std::uint64_t s = 0; s < total; ++s) probe.on_step(false);
  EXPECT_EQ(probe.windows().size(), obs::run_probe::kMaxWindows);
  EXPECT_EQ(probe.stats().windows_closed, total);
  EXPECT_EQ(probe.windows().front().index, 10u);
  EXPECT_EQ(probe.windows().back().index, total - 1);
}

// Runs `run` twice with window-enabled probes and asserts the rings are
// bit-identical (probe_window::operator== excludes wall_ns by design) and
// consistent with the aggregate counters.
template <typename RunFn>
void expect_windows_reproducible(RunFn&& run, std::uint64_t stride,
                                 std::uint64_t window_len) {
  obs::run_probe a(stride, window_len);
  obs::run_probe b(stride, window_len);
  run(&a);
  run(&b);
  a.finish();
  b.finish();
  ASSERT_FALSE(a.windows().empty());
  ASSERT_EQ(a.stats().windows_closed, b.stats().windows_closed);
  EXPECT_TRUE(a.windows() == b.windows());
  if (a.stats().windows_closed == a.windows().size()) {
    std::uint64_t steps = 0;
    std::uint64_t active = 0;
    std::uint64_t prev_index = 0;
    for (std::size_t i = 0; i < a.windows().size(); ++i) {
      const obs::probe_window& w = a.windows()[i];
      ASSERT_EQ(w.index, i == 0 ? prev_index : prev_index + 1);
      prev_index = w.index;
      steps += w.steps;
      active += w.active_steps;
    }
    EXPECT_EQ(steps, a.stats().steps);
    EXPECT_EQ(active, a.stats().active_steps);
  }
}

TEST(ProbeWindows, StepEngineBitIdenticalAcrossReruns) {
  // run_compiled: the lazy u32 per-step fallback.
  const fast_protocol proto(fast_params{});
  const graph g = make_cycle(33);
  compiled_protocol<fast_protocol> compiled(proto);
  const edge_endpoints edges(g);
  expect_windows_reproducible(
      [&](obs::run_probe* p) {
        run_compiled(compiled, edges, g, rng(47).fork(0), {}, nullptr, p);
      },
      64, 256);
}

TEST(ProbeWindows, PackedEngineBitIdenticalAcrossReruns) {
  const fast_protocol proto(fast_params{});
  const graph g = make_clique(24);
  const tuned_runner<fast_protocol> runner(proto, g,
                                           {vertex_order::natural, 16});
  expect_windows_reproducible(
      [&](obs::run_probe* p) { runner.run(rng(48).fork(0), {}, p); }, 64,
      256);
}

TEST(ProbeWindows, SilentSchedulerBitIdenticalAcrossReruns) {
  // The event-driven scheduler in its backup-dominated regime: windows
  // also carry the active-pair trajectory.
  fast_params params;
  params.h = 4;
  params.level_threshold = 8;
  params.max_level = 9;
  rng gg(5);
  const graph g = make_random_regular(64, 4, gg);
  const fast_protocol proto(params);
  const tuned_runner<fast_protocol> runner(proto, g);
  sim_options options;
  options.scheduler = scheduler_kind::silent;
  expect_windows_reproducible(
      [&](obs::run_probe* p) { runner.run(rng(49).fork(0), options, p); },
      64, 512);
}

TEST(ProbeWindows, WellmixedBatchEngineBitIdenticalAcrossReruns) {
  // Batch engine: window steps may exceed the nominal length (a batch is
  // attributed where it completes) but the ring is still bit-identical.
  const std::uint64_t n = 4096;
  const fast_protocol proto(fast_params::practical_clique(n));
  expect_windows_reproducible(
      [&](obs::run_probe* p) { run_wellmixed(proto, n, rng(50).fork(0), {}, p); },
      1024, 4096);
}

TEST(ProbeWindows, ProbeWithWindowsIsStillInvisible) {
  // Enabling the window ring must not steer the simulation, exactly like
  // every other probe feature.
  const fast_protocol proto(fast_params{});
  const graph g = make_cycle(33);
  const tuned_runner<fast_protocol> runner(proto, g);
  const election_result plain = runner.run(rng(51).fork(0), {});
  obs::run_probe probe(64, 256);
  const election_result probed = runner.run(rng(51).fork(0), {}, &probe);
  probe.finish();
  EXPECT_EQ(plain.steps, probed.steps);
  EXPECT_EQ(plain.leader, probed.leader);
  EXPECT_EQ(plain.stabilized, probed.stabilized);
  EXPECT_GT(probe.stats().windows_closed, 0u);
}

// ---------------------------------------------------------------------------
// Histograms: bucket_of == bit_width, bucket 0 = {0}, bucket i = [2^(i-1), 2^i).

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(obs::histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::histogram::bucket_of(1), 1);
  EXPECT_EQ(obs::histogram::bucket_of(2), 2);
  EXPECT_EQ(obs::histogram::bucket_of(3), 2);
  EXPECT_EQ(obs::histogram::bucket_of(4), 3);
  EXPECT_EQ(obs::histogram::bucket_of(7), 3);
  EXPECT_EQ(obs::histogram::bucket_of(8), 4);
  for (int k = 1; k < 64; ++k) {
    const std::uint64_t lo = std::uint64_t{1} << (k - 1);
    EXPECT_EQ(obs::histogram::bucket_of(lo), k) << "k=" << k;
    EXPECT_EQ(obs::histogram::bucket_of(2 * lo - 1), k) << "k=" << k;
    EXPECT_EQ(obs::histogram::bucket_lo(k), lo) << "k=" << k;
  }
  EXPECT_EQ(obs::histogram::bucket_of(UINT64_MAX), 64);
  EXPECT_EQ(obs::histogram::bucket_lo(0), 0u);
}

TEST(Histogram, ObserveAndMerge) {
  obs::histogram a;
  a.observe(0);
  a.observe(5);
  a.observe(5);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 10u);
  EXPECT_EQ(a.min, 0u);
  EXPECT_EQ(a.max, 5u);
  EXPECT_EQ(a.buckets[0], 1u);
  EXPECT_EQ(a.buckets[3], 2u);

  obs::histogram b;
  b.observe(100);
  b.merge(a);
  EXPECT_EQ(b.count, 4u);
  EXPECT_EQ(b.sum, 110u);
  EXPECT_EQ(b.min, 0u);
  EXPECT_EQ(b.max, 100u);
  EXPECT_EQ(b.buckets[7], 1u);  // 100 in [64, 128)
  EXPECT_EQ(b.buckets[3], 2u);
}

// ---------------------------------------------------------------------------
// Metrics registry: serialisations and the sidecar merge contract.

TEST(MetricsRegistry, JsonIsDeterministicAndSorted) {
  obs::metrics_registry m;
  m.add("b.counter", 2);
  m.add("a.counter");
  m.set("z.gauge", -5);
  m.observe("h.steps", 3);
  const std::string json = m.json();
  EXPECT_NE(json.find("\"popsim_metrics\": 1"), std::string::npos);
  EXPECT_LT(json.find("a.counter"), json.find("b.counter"));
  EXPECT_NE(json.find("\"z.gauge\": -5"), std::string::npos);
  EXPECT_NE(json.find("h.steps"), std::string::npos);
  EXPECT_EQ(json, m.json());  // byte-stable
}

TEST(MetricsRegistry, TextRoundTrip) {
  obs::metrics_registry m;
  m.add("engine.steps", 12345);
  m.set("fleet.jobs", 4);
  m.observe("engine.steps_per_trial", 1);
  m.observe("engine.steps_per_trial", 100);

  obs::metrics_registry back;
  ASSERT_TRUE(back.merge_text(m.text()));
  EXPECT_EQ(back.counter("engine.steps"), 12345u);
  EXPECT_EQ(back.gauge("fleet.jobs"), 4);
  const obs::histogram* h = back.find_histogram("engine.steps_per_trial");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_EQ(h->sum, 101u);
  EXPECT_EQ(h->min, 1u);
  EXPECT_EQ(h->max, 100u);
  EXPECT_EQ(back.json(), m.json());
}

TEST(MetricsRegistry, MergeAddsCountersAndHistograms) {
  obs::metrics_registry a;
  obs::metrics_registry b;
  a.add("c", 1);
  b.add("c", 2);
  a.observe("h", 4);
  b.observe("h", 8);
  a.set("g", 1);
  b.set("g", 9);
  a.merge(b);
  EXPECT_EQ(a.counter("c"), 3u);
  EXPECT_EQ(a.find_histogram("h")->count, 2u);
  EXPECT_EQ(a.gauge("g"), 9);  // last writer wins
}

TEST(MetricsRegistry, TornSidecarLinesAreSkippedNotFatal) {
  obs::metrics_registry m;
  m.add("good", 7);
  std::string text = m.text();
  text += "c torn.counter 123";  // no trailing newline: a torn tail
  text.resize(text.size() - 2);  // and the value itself is cut mid-digit

  obs::metrics_registry back;
  ASSERT_TRUE(back.merge_text(text));
  EXPECT_EQ(back.counter("good"), 7u);

  obs::metrics_registry junk;
  EXPECT_FALSE(junk.merge_text("not a metrics sidecar\n"));
}

// ---------------------------------------------------------------------------
// Trace writer: catapult JSON shape and the sidecar round-trip.

class temp_path {
 public:
  explicit temp_path(const char* name)
      : path_("/tmp/popsim-test-obs-" + std::to_string(::getpid()) + "-" +
              name) {}
  ~temp_path() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(TraceWriter, EventShapeAndDocument) {
  obs::trace_writer t(42);
  t.name_process("test");
  t.begin("span", 0, {obs::trace_arg::num("k", std::int64_t{7})});
  t.instant("mark", 0, {obs::trace_arg::str("why", "because \"quotes\"")});
  t.end("span", 0);
  const std::string json = t.json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);  // scoped instant
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);  // escaped
  EXPECT_NE(json.find("\"k\": 7"), std::string::npos);  // bare number
}

TEST(TraceWriter, TimestampsAreMonotone) {
  obs::trace_writer t(1);
  for (int i = 0; i < 100; ++i) t.instant("tick", 0);
  // Rendered ts fields must be non-decreasing; spot-check via the clock.
  const std::int64_t a = obs::trace_now_us();
  const std::int64_t b = obs::trace_now_us();
  EXPECT_LE(a, b);
  EXPECT_EQ(t.size(), 100u);
}

TEST(TraceWriter, SidecarRoundTripAndTornTailDrop) {
  obs::trace_writer worker(7);
  worker.begin_at("trial", 0, 1000, {obs::trace_arg::num("trial", std::uint64_t{0})});
  worker.end_at("trial", 0, 2000);
  worker.begin_at("trial", 0, 3000, {obs::trace_arg::num("trial", std::uint64_t{1})});
  worker.end_at("trial", 0, 4000);
  const temp_path sidecar("trace.jsonl");
  ASSERT_TRUE(worker.write_sidecar(sidecar.path()));

  obs::trace_writer sup(8);
  sup.instant("merge", 0);
  EXPECT_EQ(sup.merge_sidecar(sidecar.path()), 4u);
  EXPECT_EQ(sup.size(), 5u);
  EXPECT_NE(sup.json().find("\"pid\": 7"), std::string::npos);

  // Chop the file mid-line: the torn final event is dropped, the rest merge.
  std::ifstream in(sidecar.path());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(sidecar.path(), std::ios::trunc);
  out << content.substr(0, content.size() - 10);
  out.close();
  obs::trace_writer sup2(9);
  EXPECT_EQ(sup2.merge_sidecar(sidecar.path()), 3u);

  obs::trace_writer sup3(10);
  EXPECT_EQ(sup3.merge_sidecar("/tmp/popsim-test-obs-no-such-file"), 0u);
}

// ---------------------------------------------------------------------------
// Logger: strict level parsing (the threshold itself is process-global
// state, exercised end-to-end by the CLI tests).

TEST(Log, ParseLevelIsStrict) {
  obs::log_level level = obs::log_level::info;
  EXPECT_TRUE(obs::parse_log_level("error", level));
  EXPECT_EQ(level, obs::log_level::error);
  EXPECT_TRUE(obs::parse_log_level("debug", level));
  EXPECT_EQ(level, obs::log_level::debug);
  EXPECT_FALSE(obs::parse_log_level("chatty", level));
  EXPECT_FALSE(obs::parse_log_level("", level));
  EXPECT_FALSE(obs::parse_log_level("INFO", level));
  EXPECT_EQ(level, obs::log_level::debug);  // untouched on failure
  EXPECT_STREQ(obs::to_string(obs::log_level::warn), "warn");
}

}  // namespace
}  // namespace pp
