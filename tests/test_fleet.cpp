// Fleet sweep driver (src/fleet/sweep.h): seed-partition determinism —
// a fleet sweep's merged results are byte-identical to the serial sweep —
// plus the record/manifest protocol, worker-failure propagation, and the
// crash-recovery matrix of the supervisor (fault injection, journaled
// resume, retry-budget degradation).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "core/fast_election.h"
#include "core/star_protocol.h"
#include "dynamics/epidemic.h"
#include "fleet/artifact.h"
#include "fleet/fault.h"
#include "fleet/journal.h"
#include "fleet/supervisor.h"
#include "fleet/sweep.h"
#include "graph/generators.h"

namespace pp::fleet {
namespace {

void expect_same_summary(const election_summary& a, const election_summary& b) {
  EXPECT_EQ(a.stabilized_fraction, b.stabilized_fraction);
  EXPECT_EQ(a.max_states_used, b.max_states_used);
  EXPECT_EQ(a.steps.count, b.steps.count);
  EXPECT_EQ(a.steps.mean, b.steps.mean);
  EXPECT_EQ(a.steps.stddev, b.steps.stddev);
  EXPECT_EQ(a.steps.median, b.steps.median);
  EXPECT_EQ(a.steps.q10, b.steps.q10);
  EXPECT_EQ(a.steps.q90, b.steps.q90);
  EXPECT_EQ(a.steps.min, b.steps.min);
  EXPECT_EQ(a.steps.max, b.steps.max);
}

TEST(WorkerRange, PartitionsTrialsContiguouslyAndCompletely) {
  for (const std::uint64_t trials : {0ull, 1ull, 7ull, 24ull, 100ull}) {
    for (const int jobs : {1, 2, 3, 4, 7, 13}) {
      std::uint64_t expected_base = 0;
      for (int w = 0; w < jobs; ++w) {
        const trial_range r = worker_range(trials, jobs, w);
        EXPECT_EQ(r.base, expected_base) << trials << " trials, worker " << w;
        expected_base += r.count;
        // Blocks differ in size by at most one trial.
        EXPECT_LE(r.count, trials / jobs + 1);
      }
      EXPECT_EQ(expected_base, trials);  // disjoint cover of [0, trials)
    }
  }
  EXPECT_THROW(worker_range(10, 0, 0), std::invalid_argument);
  EXPECT_THROW(worker_range(10, 4, 4), std::invalid_argument);
  EXPECT_THROW(worker_range(10, 4, -1), std::invalid_argument);
}

TEST(Records, RoundTripThroughAPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  trial_record out;
  out.trial = 42;
  out.result.stabilized = true;
  out.result.steps = 123456789;
  out.result.leader = 7;
  out.result.distinct_states_used = 99;
  write_trial_record(fds[1], out);
  trial_record empty;
  empty.trial = 3;
  empty.result = {};
  write_trial_record(fds[1], empty);
  close(fds[1]);

  trial_record in;
  ASSERT_TRUE(read_trial_record(fds[0], in));
  EXPECT_EQ(in.trial, out.trial);
  EXPECT_EQ(in.result.stabilized, out.result.stabilized);
  EXPECT_EQ(in.result.steps, out.result.steps);
  EXPECT_EQ(in.result.leader, out.result.leader);
  EXPECT_EQ(in.result.distinct_states_used, out.result.distinct_states_used);
  ASSERT_TRUE(read_trial_record(fds[0], in));
  EXPECT_EQ(in.trial, 3u);
  EXPECT_FALSE(in.result.stabilized);
  EXPECT_FALSE(read_trial_record(fds[0], in));  // clean EOF
  close(fds[0]);
}

TEST(Records, TornRecordIsRejected) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const std::uint32_t length = 29;
  ASSERT_EQ(write(fds[1], &length, sizeof(length)),
            static_cast<ssize_t>(sizeof(length)));
  const std::uint8_t half[10] = {};
  ASSERT_EQ(write(fds[1], half, sizeof(half)),
            static_cast<ssize_t>(sizeof(half)));
  close(fds[1]);
  trial_record r;
  EXPECT_THROW(read_trial_record(fds[0], r), std::logic_error);
  close(fds[0]);
}

// The core determinism contract on the per-interaction tuned engine: for
// every worker count, fleet results == serial results, trial for trial.
TEST(FleetRun, TunedSweepIsByteIdenticalToSerial) {
  const graph g = make_cycle(300);
  const fast_protocol proto(fast_params::practical(
      g, estimate_worst_case_broadcast_time(g, 5, 3, rng(3)).value));
  const tuned_runner<fast_protocol> runner(proto, g);
  const int trials = 17;  // not a multiple of any job count: ragged blocks

  const auto serial =
      measure_election_tuned(runner, trials, rng(7).fork(2));
  for (const int jobs : {2, 3, 4}) {
    const auto fleet =
        measure_election_fleet(runner, trials, rng(7).fork(2), {}, jobs);
    expect_same_summary(fleet, serial);
  }
}

// The same contract on the edge-census engine: star sweeps shard like fast
// ones — trial t keeps seed_gen.fork(t), so fleet == serial byte for byte.
TEST(FleetRun, StarTunedSweepIsByteIdenticalToSerial) {
  const graph g = make_cycle(240);
  const star_protocol proto;
  const tuned_runner<star_protocol> runner(proto, g);
  const sim_options options{.max_steps = 50000};
  const int trials = 17;

  const auto serial =
      measure_election_tuned(runner, trials, rng(9).fork(2), options);
  for (const int jobs : {2, 3, 4}) {
    const auto fleet =
        measure_election_fleet(runner, trials, rng(9).fork(2), options, jobs);
    expect_same_summary(fleet, serial);
  }
}

// Per-trial (not just summary-level) equality, including leaders.
TEST(FleetRun, MergesPerTrialResultsByIndex) {
  const graph g = make_cycle(200);
  const fast_protocol proto(fast_params::practical(
      g, estimate_worst_case_broadcast_time(g, 5, 3, rng(3)).value));
  const tuned_runner<fast_protocol> runner(proto, g);
  const rng seed_gen = rng(11).fork(2);
  const trial_fn fn = [&](std::uint64_t, rng gen) { return runner.run(gen); };

  const auto serial = fleet_run(12, seed_gen, fn, 1);
  const auto fleet = fleet_run(12, seed_gen, fn, 5);
  ASSERT_EQ(serial.size(), fleet.size());
  for (std::size_t t = 0; t < serial.size(); ++t) {
    EXPECT_EQ(serial[t].steps, fleet[t].steps) << "trial " << t;
    EXPECT_EQ(serial[t].leader, fleet[t].leader) << "trial " << t;
    EXPECT_EQ(serial[t].stabilized, fleet[t].stabilized) << "trial " << t;
  }
}

// Well-mixed engine: deterministic per (seed, batch), so the fleet merge is
// byte-identical too — which subsumes the 3σ statistical agreement the
// acceptance contract asks for.
TEST(FleetRun, WellmixedSweepIsByteIdenticalToSerial) {
  const std::uint64_t n = 4000;
  const fast_protocol proto(fast_params::practical_clique(n));
  const int trials = 10;

  const auto serial =
      measure_election_wellmixed(proto, n, trials, rng(5).fork(2));
  const auto fleet =
      measure_election_fleet_wellmixed(proto, n, trials, rng(5).fork(2), {}, 4);
  expect_same_summary(fleet, serial);

  // The 3σ gate of the acceptance criteria, kept explicit in case the
  // byte-identity above is ever intentionally relaxed.
  const double se = serial.steps.stddev / std::sqrt(static_cast<double>(trials));
  EXPECT_LE(std::fabs(fleet.steps.mean - serial.steps.mean),
            3.0 * std::max(se, 1e-9));
}

TEST(FleetRun, WorkerFailurePropagates) {
  const trial_fn fn = [](std::uint64_t t, rng) -> election_result {
    if (t >= 2) throw std::runtime_error("injected trial failure");
    return {};
  };
  EXPECT_THROW(fleet_run(4, rng(1), fn, 2), std::logic_error);
}

TEST(FleetRun, MoreJobsThanTrialsIsCapped) {
  const trial_fn fn = [](std::uint64_t t, rng) {
    election_result r;
    r.stabilized = true;
    r.steps = t;
    return r;
  };
  const auto results = fleet_run(3, rng(1), fn, 8);
  ASSERT_EQ(results.size(), 3u);
  for (std::uint64_t t = 0; t < 3; ++t) EXPECT_EQ(results[t].steps, t);
}

TEST(Manifest, RoundTripsThroughDisk) {
  worker_manifest m;
  m.artifact_path = "/tmp/some artifact.ppaf";
  m.seed = 0xdeadbeefcafeull;
  m.trials = 48;
  m.jobs = 4;
  m.max_steps = 123456789;
  m.wellmixed_batch = 77;
  const std::string path = testing::TempDir() + "/fleet_manifest.txt";
  write_manifest(m, path);
  const worker_manifest r = read_manifest(path);
  EXPECT_EQ(r.artifact_path, m.artifact_path);
  EXPECT_EQ(r.seed, m.seed);
  EXPECT_EQ(r.trials, m.trials);
  EXPECT_EQ(r.jobs, m.jobs);
  EXPECT_EQ(r.max_steps, m.max_steps);
  EXPECT_EQ(r.wellmixed_batch, m.wellmixed_batch);
  std::remove(path.c_str());

  EXPECT_THROW(read_manifest("/nonexistent/fleet/manifest"), std::invalid_argument);
  // A non-manifest file is rejected, not misparsed.
  const std::string junk = testing::TempDir() + "/fleet_junk.txt";
  std::FILE* f = std::fopen(junk.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a manifest\n", f);
  std::fclose(f);
  EXPECT_THROW(read_manifest(junk), std::invalid_argument);
  std::remove(junk.c_str());
}

TEST(Manifest, OutOfRangeValuesAreRejectedNotWrapped) {
  // Manifests are hand-editable: trials=-1 must not strtoull-wrap to a
  // 2^64-trial worker loop, and trials past the CLI bound is rejected too.
  for (const char* bad : {"trials=-1", "trials=0", "trials=1000001",
                          "seed=-5", "jobs=-2"}) {
    const std::string path = testing::TempDir() + "/fleet_bad_manifest.txt";
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "ppfleet-manifest v1\nartifact=/tmp/x.ppaf\n%s\n", bad);
    std::fclose(f);
    EXPECT_THROW(read_manifest(path), std::invalid_argument) << bad;
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Fault specs (fleet/fault.h)

TEST(FaultSpec, ParsesAndRoundTrips) {
  const struct {
    const char* text;
    fault_spec want;
  } valid[] = {
      {"exit:w0", {fault_kind::exit, 0, 0}},
      {"sigkill:w3:after=7", {fault_kind::sigkill, 3, 7}},
      {"stall:w12:after=0", {fault_kind::stall, 12, 0}},
      {"torn:w1:after=2", {fault_kind::torn, 1, 2}},
  };
  for (const auto& row : valid) {
    fault_spec got;
    ASSERT_TRUE(parse_fault_spec(row.text, got)) << row.text;
    EXPECT_EQ(got, row.want) << row.text;
    fault_spec round;
    ASSERT_TRUE(parse_fault_spec(to_string(got), round)) << row.text;
    EXPECT_EQ(round, got) << row.text;
  }

  std::vector<fault_spec> list;
  ASSERT_TRUE(parse_fault_specs("exit:w0:after=1,sigkill:w1", list));
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], (fault_spec{fault_kind::exit, 0, 1}));
  EXPECT_EQ(list[1], (fault_spec{fault_kind::sigkill, 1, 0}));
  fault_spec round_list;  // list round trip
  std::vector<fault_spec> list2;
  ASSERT_TRUE(parse_fault_specs(to_string(list), list2));
  EXPECT_EQ(list2, list);
  (void)round_list;
}

TEST(FaultSpec, MalformedSpecsAreRejected) {
  const char* invalid[] = {
      "",                  // empty
      "exit",              // no worker
      "vanish:w0",         // unknown kind
      "exit:0",            // worker without the w prefix
      "exit:w",            // w without a slot number
      "exit:wx",           // non-numeric slot
      "exit:w-1",          // negative slot
      "exit:w0:after",     // after without a value
      "exit:w0:afterx=3",  // misspelled key
      "exit:w0:after=",    // empty count
      "exit:w0:after=2x",  // trailing garbage in the count
      "exit:w0,",          // trailing comma in a list
      ",exit:w0",          // leading comma in a list
  };
  for (const char* text : invalid) {
    fault_spec spec;
    std::vector<fault_spec> list;
    EXPECT_FALSE(parse_fault_spec(text, spec)) << text;
    EXPECT_FALSE(parse_fault_specs(text, list)) << text;
  }
}

// ---------------------------------------------------------------------------
// Journal (fleet/journal.h)

namespace {

constexpr std::size_t kTestHeaderBytes = 32;
constexpr std::size_t kTestRecordBytes = 4 + kTrialRecordPayload + 8;

trial_record synthetic_record(std::uint64_t t) {
  trial_record r;
  r.trial = t;
  r.result.stabilized = true;
  r.result.steps = 1000 + 17 * t;
  r.result.leader = static_cast<node_id>(t % 13);
  r.result.distinct_states_used = 4;
  return r;
}

std::string write_test_journal(const journal_header& header,
                               std::uint64_t records, const char* name) {
  const std::string path = testing::TempDir() + "/" + name;
  journal_writer writer(path, header, /*resume=*/false);
  for (std::uint64_t t = 0; t < records; ++t) writer.append(synthetic_record(t));
  return path;
}

void flip_byte(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);
}

}  // namespace

TEST(Journal, WriteReplayRoundTrip) {
  const journal_header header{42, 10};
  const std::string path = write_test_journal(header, 6, "journal_rt.ppaj");
  const journal_replay replay = replay_journal(path);
  EXPECT_EQ(replay.header, header);
  EXPECT_EQ(replay.corrupt_records, 0u);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 6u);
  for (std::uint64_t t = 0; t < 6; ++t) {
    const trial_record want = synthetic_record(t);
    EXPECT_EQ(replay.records[t].trial, want.trial);
    EXPECT_EQ(replay.records[t].result.steps, want.result.steps);
    EXPECT_EQ(replay.records[t].result.leader, want.result.leader);
  }
  std::remove(path.c_str());
}

TEST(Journal, TornTailIsToleratedAndTruncatedOnResume) {
  const journal_header header{7, 10};
  const std::string path = write_test_journal(header, 4, "journal_torn.ppaj");
  {
    // Simulate a writer killed mid-record: a plausible length field and half
    // a payload dangling at the end of the file.
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const std::uint32_t length = kTrialRecordPayload;
    std::fwrite(&length, sizeof(length), 1, f);
    const std::uint8_t half[kTrialRecordPayload / 2] = {};
    std::fwrite(half, sizeof(half), 1, f);
    std::fclose(f);
  }
  const journal_replay torn = replay_journal(path);
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_EQ(torn.records.size(), 4u);  // everything before the tear survives
  EXPECT_EQ(torn.durable_bytes, kTestHeaderBytes + 4 * kTestRecordBytes);

  // Resuming truncates the tear so the appended record stays well-framed.
  {
    journal_writer writer(path, header, /*resume=*/true);
    writer.append(synthetic_record(4));
  }
  const journal_replay mended = replay_journal(path);
  EXPECT_FALSE(mended.torn_tail);
  EXPECT_EQ(mended.corrupt_records, 0u);
  ASSERT_EQ(mended.records.size(), 5u);
  EXPECT_EQ(mended.records[4].trial, 4u);
  std::remove(path.c_str());
}

TEST(Journal, CorruptRecordIsSkippedAndFramingSurvives) {
  const journal_header header{9, 10};
  const std::string path = write_test_journal(header, 5, "journal_rot.ppaj");
  // Flip a byte inside record 2's payload: its checksum fails, but the
  // fixed-size framing lets replay pick up record 3 cleanly.
  flip_byte(path, static_cast<long>(kTestHeaderBytes + 2 * kTestRecordBytes + 4 + 9));
  const journal_replay replay = replay_journal(path);
  EXPECT_EQ(replay.corrupt_records, 1u);
  EXPECT_FALSE(replay.torn_tail);
  ASSERT_EQ(replay.records.size(), 4u);
  EXPECT_EQ(replay.records[0].trial, 0u);
  EXPECT_EQ(replay.records[1].trial, 1u);
  EXPECT_EQ(replay.records[2].trial, 3u);  // record 2 dropped
  EXPECT_EQ(replay.records[3].trial, 4u);
  std::remove(path.c_str());
}

TEST(Journal, NonJournalFilesAndHeaderMismatchesAreRejected) {
  EXPECT_THROW(replay_journal("/nonexistent/sweep.ppaj"), std::invalid_argument);
  const std::string junk = testing::TempDir() + "/journal_junk.ppaj";
  std::FILE* f = std::fopen(junk.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a journal, but with enough bytes to parse", f);
  std::fclose(f);
  EXPECT_THROW(replay_journal(junk), std::invalid_argument);
  std::remove(junk.c_str());

  // Resuming against a journal written for a different sweep fails loudly.
  const std::string path =
      write_test_journal(journal_header{5, 10}, 3, "journal_other.ppaj");
  EXPECT_THROW(journal_writer(path, journal_header{6, 10}, /*resume=*/true),
               std::invalid_argument);
  EXPECT_THROW(journal_writer(path, journal_header{5, 11}, /*resume=*/true),
               std::invalid_argument);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Supervisor (fleet/supervisor.h): the full recovery matrix.  Every test
// compares against the plain serial sweep — recovery is only correct if the
// merged results are byte-identical to a run where nothing ever failed.

namespace {

election_result synthetic_trial(std::uint64_t t, rng gen) {
  election_result r;
  r.stabilized = true;
  r.steps = 1000 + gen.uniform_below(1'000'000);
  r.leader = static_cast<node_id>(t % 11);
  r.distinct_states_used = 4;
  return r;
}

void expect_same_results(const std::vector<election_result>& a,
                         const std::vector<election_result>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].steps, b[t].steps) << "trial " << t;
    EXPECT_EQ(a[t].leader, b[t].leader) << "trial " << t;
    EXPECT_EQ(a[t].stabilized, b[t].stabilized) << "trial " << t;
  }
}

}  // namespace

TEST(Supervisor, CleanSweepMatchesSerial) {
  const rng seed_gen = rng(31).fork(2);
  const auto serial = fleet_run(17, seed_gen, synthetic_trial, 1);
  const auto supervised =
      supervised_fleet_run(17, seed_gen, synthetic_trial, 3, {});
  expect_same_results(serial, supervised);
}

TEST(Supervisor, RecoversFromEveryFaultKindByteIdentically) {
  const rng seed_gen = rng(33).fork(2);
  const auto serial = fleet_run(17, seed_gen, synthetic_trial, 1);

  // drop and garbage are socket-first faults (fleet/net.h) but must recover
  // on pipes too: drop degrades to an early EOF, garbage to a checksum-
  // rejected frame — both kill the worker's remaining chunk, never a trial.
  for (const fault_kind kind :
       {fault_kind::exit, fault_kind::sigkill, fault_kind::torn,
        fault_kind::drop, fault_kind::garbage}) {
    supervise_options options;
    options.faults = {{kind, 1, 1}};  // slot 1 dies after one record
    const auto recovered =
        supervised_fleet_run(17, seed_gen, synthetic_trial, 3, options);
    expect_same_results(serial, recovered);
  }

  // A stalled worker writes nothing and never exits: only the inactivity
  // timeout can reclaim its trials.
  supervise_options options;
  options.faults = {{fault_kind::stall, 0, 2}};
  options.worker_timeout_ms = 250;
  const auto recovered =
      supervised_fleet_run(17, seed_gen, synthetic_trial, 3, options);
  expect_same_results(serial, recovered);
}

TEST(Supervisor, JournalsEveryTrialAndResumeSkipsCompletedOnes) {
  const rng seed_gen = rng(35).fork(2);
  const std::uint64_t trials = 15;
  const auto serial = fleet_run(trials, seed_gen, synthetic_trial, 1);
  const std::string path = testing::TempDir() + "/supervisor_resume.ppaj";

  // Journal only the first 9 trials, as if the sweep was killed there.
  {
    journal_writer writer(path, journal_header{35, trials}, /*resume=*/false);
    for (std::uint64_t t = 0; t < 9; ++t) writer.append({t, serial[t]});
  }

  // The resumed sweep must only run the gap: a re-run of any completed trial
  // would produce poisoned results and break the equality below.
  const trial_fn gap_only = [&](std::uint64_t t, rng gen) {
    if (t < 9) {
      election_result poisoned;
      poisoned.steps = 999'999'999;
      return poisoned;
    }
    return synthetic_trial(t, gen);
  };
  supervise_options options;
  options.journal_path = path;
  options.resume = true;
  options.journal_tag = 35;
  const auto resumed =
      supervised_fleet_run(trials, seed_gen, gap_only, 2, options);
  expect_same_results(serial, resumed);

  // After the resumed run the journal holds every trial.
  const journal_replay replay = replay_journal(path);
  std::vector<bool> seen(trials, false);
  for (const trial_record& r : replay.records) seen[r.trial] = true;
  for (std::uint64_t t = 0; t < trials; ++t) EXPECT_TRUE(seen[t]) << t;
  std::remove(path.c_str());
}

TEST(Supervisor, CorruptedJournalRecordReRunsThatTrial) {
  const rng seed_gen = rng(37).fork(2);
  const std::uint64_t trials = 12;
  const auto serial = fleet_run(trials, seed_gen, synthetic_trial, 1);
  const std::string path = testing::TempDir() + "/supervisor_rot.ppaj";
  {
    journal_writer writer(path, journal_header{37, trials}, /*resume=*/false);
    for (std::uint64_t t = 0; t < trials; ++t) writer.append({t, serial[t]});
  }
  // Rot one byte of record 5: the resumed sweep must reject it and re-run
  // exactly that trial.
  flip_byte(path, static_cast<long>(kTestHeaderBytes + 5 * kTestRecordBytes + 8));
  supervise_options options;
  options.journal_path = path;
  options.resume = true;
  options.journal_tag = 37;
  const auto resumed =
      supervised_fleet_run(trials, seed_gen, synthetic_trial, 2, options);
  expect_same_results(serial, resumed);
  std::remove(path.c_str());
}

TEST(Supervisor, ExhaustedRetryBudgetDegradesToInlineAndCompletes) {
  const rng seed_gen = rng(39).fork(2);
  const auto serial = fleet_run(14, seed_gen, synthetic_trial, 1);
  supervise_options options;
  options.max_retries = 0;  // the first failure exhausts the budget
  options.faults = {{fault_kind::sigkill, 0, 1}};
  const auto degraded =
      supervised_fleet_run(14, seed_gen, synthetic_trial, 3, options);
  expect_same_results(serial, degraded);
}

TEST(Supervisor, RespawnedWorkersRunCleanSoOneSpecIsOneFailure) {
  // With a nonzero retry budget and a fault on every slot, every slot fails
  // once, respawns clean, and the sweep still completes without degrading.
  const rng seed_gen = rng(41).fork(2);
  const auto serial = fleet_run(13, seed_gen, synthetic_trial, 1);
  supervise_options options;
  options.max_retries = 2;
  options.faults = {{fault_kind::exit, 0, 0}, {fault_kind::sigkill, 1, 2}};
  const auto recovered =
      supervised_fleet_run(13, seed_gen, synthetic_trial, 2, options);
  expect_same_results(serial, recovered);
}

TEST(Supervisor, InvalidOptionsAreRejected) {
  // A fault spec naming a slot beyond the fleet would never fire.
  supervise_options beyond;
  beyond.faults = {{fault_kind::exit, 5, 0}};
  EXPECT_THROW(supervised_fleet_run(4, rng(1), synthetic_trial, 2, beyond),
               std::invalid_argument);
  // Resume without a journal path has nothing to replay.
  supervise_options no_path;
  no_path.resume = true;
  EXPECT_THROW(supervised_fleet_run(4, rng(1), synthetic_trial, 2, no_path),
               std::invalid_argument);
  // Resume against a journal with a different sweep identity.
  const std::string path =
      write_test_journal(journal_header{1, 4}, 2, "supervisor_mismatch.ppaj");
  supervise_options mismatched;
  mismatched.journal_path = path;
  mismatched.resume = true;
  mismatched.journal_tag = 2;
  EXPECT_THROW(supervised_fleet_run(4, rng(1), synthetic_trial, 2, mismatched),
               std::invalid_argument);
  std::remove(path.c_str());
}

#ifdef PP_POPSIM_CLI

// End-to-end exec-mode sweep: save a real artifact, write a manifest, spawn
// `popsim --worker` subprocesses, and compare the merged records to the
// serial sweep — the same protocol CI's fleet-determinism step drives
// through the CLI.
TEST(SpawnWorkers, CliWorkersMatchSerialSweep) {
  const graph g = make_cycle(300);
  const fast_protocol proto(fast_params::practical(
      g, estimate_worst_case_broadcast_time(g, 5, 3, rng(3)).value));
  const tuned_runner<fast_protocol> runner(proto, g);

  const std::string artifact_path = testing::TempDir() + "/fleet_sweep.ppaf";
  save_artifact(make_tuned_artifact(runner, g, "cycle", fast_desc(proto.params())),
                artifact_path);

  worker_manifest m;
  m.artifact_path = artifact_path;
  m.seed = 21;
  m.trials = 14;
  m.jobs = 3;
  const std::string manifest_path = testing::TempDir() + "/fleet_sweep.manifest";
  write_manifest(m, manifest_path);

  const auto fleet = spawn_worker_sweep(PP_POPSIM_CLI, manifest_path, m);
  const auto serial = fleet_run(
      m.trials, rng(m.seed).fork(2),
      [&](std::uint64_t, rng gen) { return runner.run(gen); }, 1);
  ASSERT_EQ(fleet.size(), serial.size());
  for (std::size_t t = 0; t < serial.size(); ++t) {
    EXPECT_EQ(serial[t].steps, fleet[t].steps) << "trial " << t;
    EXPECT_EQ(serial[t].leader, fleet[t].leader) << "trial " << t;
    EXPECT_EQ(serial[t].stabilized, fleet[t].stabilized) << "trial " << t;
  }
  std::remove(artifact_path.c_str());
  std::remove(manifest_path.c_str());
}

// Supervised exec-mode sweep: a `popsim --worker` subprocess is SIGKILLed by
// an injected fault, the supervisor respawns it with the remaining chunk,
// and the merged records still match the serial sweep exactly.
TEST(SpawnWorkers, SupervisedCliWorkersRecoverFromSigkill) {
  const graph g = make_cycle(300);
  const fast_protocol proto(fast_params::practical(
      g, estimate_worst_case_broadcast_time(g, 5, 3, rng(3)).value));
  const tuned_runner<fast_protocol> runner(proto, g);

  const std::string artifact_path = testing::TempDir() + "/fleet_sup.ppaf";
  save_artifact(make_tuned_artifact(runner, g, "cycle", fast_desc(proto.params())),
                artifact_path);

  worker_manifest m;
  m.artifact_path = artifact_path;
  m.seed = 23;
  m.trials = 13;
  m.jobs = 3;
  const std::string manifest_path = testing::TempDir() + "/fleet_sup.manifest";
  write_manifest(m, manifest_path);

  supervise_options options;
  options.faults = {{fault_kind::sigkill, 1, 1}};
  const auto fleet =
      supervised_spawn_sweep(PP_POPSIM_CLI, manifest_path, m, options);
  const auto serial = fleet_run(
      m.trials, rng(m.seed).fork(2),
      [&](std::uint64_t, rng gen) { return runner.run(gen); }, 1);
  expect_same_results(serial, fleet);
  std::remove(artifact_path.c_str());
  std::remove(manifest_path.c_str());
}

TEST(SpawnWorkers, MissingWorkerBinaryFailsLoudly) {
  worker_manifest m;
  m.artifact_path = "/nonexistent.ppaf";
  m.trials = 2;
  m.jobs = 1;
  EXPECT_THROW(spawn_worker_sweep("/nonexistent/popsim", "/nonexistent/manifest", m),
               std::logic_error);
}

#endif  // PP_POPSIM_CLI

}  // namespace
}  // namespace pp::fleet
