// Fleet sweep driver (src/fleet/sweep.h): seed-partition determinism —
// a fleet sweep's merged results are byte-identical to the serial sweep —
// plus the record/manifest protocol and worker-failure propagation.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "core/fast_election.h"
#include "core/star_protocol.h"
#include "dynamics/epidemic.h"
#include "fleet/artifact.h"
#include "fleet/sweep.h"
#include "graph/generators.h"

namespace pp::fleet {
namespace {

void expect_same_summary(const election_summary& a, const election_summary& b) {
  EXPECT_EQ(a.stabilized_fraction, b.stabilized_fraction);
  EXPECT_EQ(a.max_states_used, b.max_states_used);
  EXPECT_EQ(a.steps.count, b.steps.count);
  EXPECT_EQ(a.steps.mean, b.steps.mean);
  EXPECT_EQ(a.steps.stddev, b.steps.stddev);
  EXPECT_EQ(a.steps.median, b.steps.median);
  EXPECT_EQ(a.steps.q10, b.steps.q10);
  EXPECT_EQ(a.steps.q90, b.steps.q90);
  EXPECT_EQ(a.steps.min, b.steps.min);
  EXPECT_EQ(a.steps.max, b.steps.max);
}

TEST(WorkerRange, PartitionsTrialsContiguouslyAndCompletely) {
  for (const std::uint64_t trials : {0ull, 1ull, 7ull, 24ull, 100ull}) {
    for (const int jobs : {1, 2, 3, 4, 7, 13}) {
      std::uint64_t expected_base = 0;
      for (int w = 0; w < jobs; ++w) {
        const trial_range r = worker_range(trials, jobs, w);
        EXPECT_EQ(r.base, expected_base) << trials << " trials, worker " << w;
        expected_base += r.count;
        // Blocks differ in size by at most one trial.
        EXPECT_LE(r.count, trials / jobs + 1);
      }
      EXPECT_EQ(expected_base, trials);  // disjoint cover of [0, trials)
    }
  }
  EXPECT_THROW(worker_range(10, 0, 0), std::invalid_argument);
  EXPECT_THROW(worker_range(10, 4, 4), std::invalid_argument);
  EXPECT_THROW(worker_range(10, 4, -1), std::invalid_argument);
}

TEST(Records, RoundTripThroughAPipe) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  trial_record out;
  out.trial = 42;
  out.result.stabilized = true;
  out.result.steps = 123456789;
  out.result.leader = 7;
  out.result.distinct_states_used = 99;
  write_trial_record(fds[1], out);
  trial_record empty;
  empty.trial = 3;
  empty.result = {};
  write_trial_record(fds[1], empty);
  close(fds[1]);

  trial_record in;
  ASSERT_TRUE(read_trial_record(fds[0], in));
  EXPECT_EQ(in.trial, out.trial);
  EXPECT_EQ(in.result.stabilized, out.result.stabilized);
  EXPECT_EQ(in.result.steps, out.result.steps);
  EXPECT_EQ(in.result.leader, out.result.leader);
  EXPECT_EQ(in.result.distinct_states_used, out.result.distinct_states_used);
  ASSERT_TRUE(read_trial_record(fds[0], in));
  EXPECT_EQ(in.trial, 3u);
  EXPECT_FALSE(in.result.stabilized);
  EXPECT_FALSE(read_trial_record(fds[0], in));  // clean EOF
  close(fds[0]);
}

TEST(Records, TornRecordIsRejected) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const std::uint32_t length = 29;
  ASSERT_EQ(write(fds[1], &length, sizeof(length)),
            static_cast<ssize_t>(sizeof(length)));
  const std::uint8_t half[10] = {};
  ASSERT_EQ(write(fds[1], half, sizeof(half)),
            static_cast<ssize_t>(sizeof(half)));
  close(fds[1]);
  trial_record r;
  EXPECT_THROW(read_trial_record(fds[0], r), std::logic_error);
  close(fds[0]);
}

// The core determinism contract on the per-interaction tuned engine: for
// every worker count, fleet results == serial results, trial for trial.
TEST(FleetRun, TunedSweepIsByteIdenticalToSerial) {
  const graph g = make_cycle(300);
  const fast_protocol proto(fast_params::practical(
      g, estimate_worst_case_broadcast_time(g, 5, 3, rng(3)).value));
  const tuned_runner<fast_protocol> runner(proto, g);
  const int trials = 17;  // not a multiple of any job count: ragged blocks

  const auto serial =
      measure_election_tuned(runner, trials, rng(7).fork(2));
  for (const int jobs : {2, 3, 4}) {
    const auto fleet =
        measure_election_fleet(runner, trials, rng(7).fork(2), {}, jobs);
    expect_same_summary(fleet, serial);
  }
}

// The same contract on the edge-census engine: star sweeps shard like fast
// ones — trial t keeps seed_gen.fork(t), so fleet == serial byte for byte.
TEST(FleetRun, StarTunedSweepIsByteIdenticalToSerial) {
  const graph g = make_cycle(240);
  const star_protocol proto;
  const tuned_runner<star_protocol> runner(proto, g);
  const sim_options options{.max_steps = 50000};
  const int trials = 17;

  const auto serial =
      measure_election_tuned(runner, trials, rng(9).fork(2), options);
  for (const int jobs : {2, 3, 4}) {
    const auto fleet =
        measure_election_fleet(runner, trials, rng(9).fork(2), options, jobs);
    expect_same_summary(fleet, serial);
  }
}

// Per-trial (not just summary-level) equality, including leaders.
TEST(FleetRun, MergesPerTrialResultsByIndex) {
  const graph g = make_cycle(200);
  const fast_protocol proto(fast_params::practical(
      g, estimate_worst_case_broadcast_time(g, 5, 3, rng(3)).value));
  const tuned_runner<fast_protocol> runner(proto, g);
  const rng seed_gen = rng(11).fork(2);
  const trial_fn fn = [&](std::uint64_t, rng gen) { return runner.run(gen); };

  const auto serial = fleet_run(12, seed_gen, fn, 1);
  const auto fleet = fleet_run(12, seed_gen, fn, 5);
  ASSERT_EQ(serial.size(), fleet.size());
  for (std::size_t t = 0; t < serial.size(); ++t) {
    EXPECT_EQ(serial[t].steps, fleet[t].steps) << "trial " << t;
    EXPECT_EQ(serial[t].leader, fleet[t].leader) << "trial " << t;
    EXPECT_EQ(serial[t].stabilized, fleet[t].stabilized) << "trial " << t;
  }
}

// Well-mixed engine: deterministic per (seed, batch), so the fleet merge is
// byte-identical too — which subsumes the 3σ statistical agreement the
// acceptance contract asks for.
TEST(FleetRun, WellmixedSweepIsByteIdenticalToSerial) {
  const std::uint64_t n = 4000;
  const fast_protocol proto(fast_params::practical_clique(n));
  const int trials = 10;

  const auto serial =
      measure_election_wellmixed(proto, n, trials, rng(5).fork(2));
  const auto fleet =
      measure_election_fleet_wellmixed(proto, n, trials, rng(5).fork(2), {}, 4);
  expect_same_summary(fleet, serial);

  // The 3σ gate of the acceptance criteria, kept explicit in case the
  // byte-identity above is ever intentionally relaxed.
  const double se = serial.steps.stddev / std::sqrt(static_cast<double>(trials));
  EXPECT_LE(std::fabs(fleet.steps.mean - serial.steps.mean),
            3.0 * std::max(se, 1e-9));
}

TEST(FleetRun, WorkerFailurePropagates) {
  const trial_fn fn = [](std::uint64_t t, rng) -> election_result {
    if (t >= 2) throw std::runtime_error("injected trial failure");
    return {};
  };
  EXPECT_THROW(fleet_run(4, rng(1), fn, 2), std::logic_error);
}

TEST(FleetRun, MoreJobsThanTrialsIsCapped) {
  const trial_fn fn = [](std::uint64_t t, rng) {
    election_result r;
    r.stabilized = true;
    r.steps = t;
    return r;
  };
  const auto results = fleet_run(3, rng(1), fn, 8);
  ASSERT_EQ(results.size(), 3u);
  for (std::uint64_t t = 0; t < 3; ++t) EXPECT_EQ(results[t].steps, t);
}

TEST(Manifest, RoundTripsThroughDisk) {
  worker_manifest m;
  m.artifact_path = "/tmp/some artifact.ppaf";
  m.seed = 0xdeadbeefcafeull;
  m.trials = 48;
  m.jobs = 4;
  m.max_steps = 123456789;
  m.wellmixed_batch = 77;
  const std::string path = testing::TempDir() + "/fleet_manifest.txt";
  write_manifest(m, path);
  const worker_manifest r = read_manifest(path);
  EXPECT_EQ(r.artifact_path, m.artifact_path);
  EXPECT_EQ(r.seed, m.seed);
  EXPECT_EQ(r.trials, m.trials);
  EXPECT_EQ(r.jobs, m.jobs);
  EXPECT_EQ(r.max_steps, m.max_steps);
  EXPECT_EQ(r.wellmixed_batch, m.wellmixed_batch);
  std::remove(path.c_str());

  EXPECT_THROW(read_manifest("/nonexistent/fleet/manifest"), std::invalid_argument);
  // A non-manifest file is rejected, not misparsed.
  const std::string junk = testing::TempDir() + "/fleet_junk.txt";
  std::FILE* f = std::fopen(junk.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a manifest\n", f);
  std::fclose(f);
  EXPECT_THROW(read_manifest(junk), std::invalid_argument);
  std::remove(junk.c_str());
}

TEST(Manifest, OutOfRangeValuesAreRejectedNotWrapped) {
  // Manifests are hand-editable: trials=-1 must not strtoull-wrap to a
  // 2^64-trial worker loop, and trials past the CLI bound is rejected too.
  for (const char* bad : {"trials=-1", "trials=0", "trials=1000001",
                          "seed=-5", "jobs=-2"}) {
    const std::string path = testing::TempDir() + "/fleet_bad_manifest.txt";
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "ppfleet-manifest v1\nartifact=/tmp/x.ppaf\n%s\n", bad);
    std::fclose(f);
    EXPECT_THROW(read_manifest(path), std::invalid_argument) << bad;
    std::remove(path.c_str());
  }
}

#ifdef PP_POPSIM_CLI

// End-to-end exec-mode sweep: save a real artifact, write a manifest, spawn
// `popsim --worker` subprocesses, and compare the merged records to the
// serial sweep — the same protocol CI's fleet-determinism step drives
// through the CLI.
TEST(SpawnWorkers, CliWorkersMatchSerialSweep) {
  const graph g = make_cycle(300);
  const fast_protocol proto(fast_params::practical(
      g, estimate_worst_case_broadcast_time(g, 5, 3, rng(3)).value));
  const tuned_runner<fast_protocol> runner(proto, g);

  const std::string artifact_path = testing::TempDir() + "/fleet_sweep.ppaf";
  save_artifact(make_tuned_artifact(runner, g, "cycle", fast_desc(proto.params())),
                artifact_path);

  worker_manifest m;
  m.artifact_path = artifact_path;
  m.seed = 21;
  m.trials = 14;
  m.jobs = 3;
  const std::string manifest_path = testing::TempDir() + "/fleet_sweep.manifest";
  write_manifest(m, manifest_path);

  const auto fleet = spawn_worker_sweep(PP_POPSIM_CLI, manifest_path, m);
  const auto serial = fleet_run(
      m.trials, rng(m.seed).fork(2),
      [&](std::uint64_t, rng gen) { return runner.run(gen); }, 1);
  ASSERT_EQ(fleet.size(), serial.size());
  for (std::size_t t = 0; t < serial.size(); ++t) {
    EXPECT_EQ(serial[t].steps, fleet[t].steps) << "trial " << t;
    EXPECT_EQ(serial[t].leader, fleet[t].leader) << "trial " << t;
    EXPECT_EQ(serial[t].stabilized, fleet[t].stabilized) << "trial " << t;
  }
  std::remove(artifact_path.c_str());
  std::remove(manifest_path.c_str());
}

TEST(SpawnWorkers, MissingWorkerBinaryFailsLoudly) {
  worker_manifest m;
  m.artifact_path = "/nonexistent.ppaf";
  m.trials = 2;
  m.jobs = 1;
  EXPECT_THROW(spawn_worker_sweep("/nonexistent/popsim", "/nonexistent/manifest", m),
               std::logic_error);
}

#endif  // PP_POPSIM_CLI

}  // namespace
}  // namespace pp::fleet
