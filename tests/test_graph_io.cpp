#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"

namespace pp {
namespace {

TEST(GraphIo, RoundTripPreservesGraph) {
  rng gen(1);
  for (const auto& g : {make_clique(6), make_cycle(9), make_star(7),
                        make_erdos_renyi(20, 0.3, gen)}) {
    const graph back = from_edge_list_string(to_edge_list_string(g));
    EXPECT_EQ(back.num_nodes(), g.num_nodes());
    EXPECT_EQ(back.edges(), g.edges());
  }
}

TEST(GraphIo, HeaderFormat) {
  const std::string text = to_edge_list_string(make_path(3));
  EXPECT_EQ(text.substr(0, 4), "3 2\n");
}

TEST(GraphIo, IgnoresCommentsAndBlankLines) {
  const std::string text =
      "# interaction graph\n"
      "\n"
      "3 2\n"
      "# edges follow\n"
      "0 1\n"
      "\n"
      "1 2\n";
  const graph g = from_edge_list_string(text);
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(GraphIo, RejectsMalformedInput) {
  EXPECT_THROW(from_edge_list_string(""), std::invalid_argument);
  EXPECT_THROW(from_edge_list_string("abc\n"), std::invalid_argument);
  EXPECT_THROW(from_edge_list_string("3 2\n0 1\n"), std::invalid_argument);
  EXPECT_THROW(from_edge_list_string("3 1\n0 3\n"), std::invalid_argument);
  EXPECT_THROW(from_edge_list_string("3 1\n1 1\n"), std::invalid_argument);
}

TEST(GraphIo, DotContainsAllEdges) {
  const graph g = make_cycle(4);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph population {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 3;"), std::string::npos);
  EXPECT_EQ(dot.find("doublecircle"), std::string::npos);
}

TEST(GraphIo, DotMarksLeaders) {
  const graph g = make_path(3);
  std::vector<bool> leaders{false, true, false};
  const std::string dot = to_dot(g, leaders);
  EXPECT_NE(dot.find("1 [shape=doublecircle];"), std::string::npos);
}

TEST(GraphIo, DotRejectsWrongFlagCount) {
  EXPECT_THROW(to_dot(make_path(3), std::vector<bool>{true}),
               std::invalid_argument);
}

TEST(GraphIo, StreamInterface) {
  const graph g = make_star(5);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const graph back = read_edge_list(buffer);
  EXPECT_EQ(back.edges(), g.edges());
}

}  // namespace
}  // namespace pp
