// Tests for the event-driven silent-edge scheduler (src/engine/silent/).
//
// The scheduler intentionally trades per-seed equivalence with run_packed
// for O(active) work (draw consumption differs: one uniform01 + one pick
// per *active* step instead of one pick per step), so the contracts tested
// here are: exact jump-sampler boundaries and distribution, exact
// active-set/incidence bookkeeping, cap and frozen-configuration semantics,
// determinism for a fixed seed, and 3σ statistical agreement of
// stabilization times with the step scheduler (tests/stat_gate.h).
#include "engine/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "analysis/experiment.h"
#include "core/beauquier.h"
#include "core/fast_election.h"
#include "core/star_protocol.h"
#include "engine/silent/jump.h"
#include "graph/generators.h"
#include "obs/probe.h"
#include "stat_gate.h"

namespace pp {
namespace {

// ------------------------------------------------------------- jump sampler

TEST(JumpSampler, EmptyActiveSetJumpsToCap) {
  // active == 0: the configuration is frozen, the whole budget is silent and
  // no uniform may be consumed (there is nothing to invert).
  int calls = 0;
  const auto u01 = [&] {
    ++calls;
    return 0.5;
  };
  EXPECT_EQ(sample_silent_run(u01, 0, 16, 1000), 1000u);
  EXPECT_EQ(sample_silent_run(u01, 0, 1, 0), 0u);
  EXPECT_EQ(calls, 0);
}

TEST(JumpSampler, FullActiveSetNeverSkips) {
  // active == total: every draw hits an active pair; skip is identically 0
  // with no floating point involved and no uniform consumed.
  int calls = 0;
  const auto u01 = [&] {
    ++calls;
    return 0.999999;
  };
  EXPECT_EQ(sample_silent_run(u01, 16, 16, 1000), 0u);
  EXPECT_EQ(sample_silent_run(u01, 1, 1, 1000), 0u);
  EXPECT_EQ(calls, 0);
}

TEST(JumpSampler, InversionBoundaries) {
  // u01 = 0 maps to U = 1, log(1) = -0.0: an immediate active step.
  EXPECT_EQ(sample_silent_run([] { return 0.0; }, 1, 2, 100), 0u);
  // p = 1/2, u01 = 0.74: U = 0.26, log(0.26)/log(0.5) = 1.94… → skip 1.
  EXPECT_EQ(sample_silent_run([] { return 0.74; }, 1, 2, 100), 1u);
  // u01 → 1 makes the inversion huge; the cap clamps it exactly.
  EXPECT_EQ(sample_silent_run([] { return 1.0 - 1e-300; }, 1, 2, 100), 100u);
  // A rare pair (p = 1/2^20) with a mid uniform still respects a tiny cap.
  EXPECT_EQ(sample_silent_run([] { return 0.5; }, 1, 1u << 20, 3), 3u);
  // cap == 0: any positive inversion clamps to 0.
  EXPECT_EQ(sample_silent_run([] { return 0.9; }, 1, 2, 0), 0u);
}

TEST(JumpSampler, RejectsImpossibleCounts) {
  const auto u01 = [] { return 0.5; };
  EXPECT_THROW(sample_silent_run(u01, 0, 0, 10), std::invalid_argument);
  EXPECT_THROW(sample_silent_run(u01, 3, 2, 10), std::invalid_argument);
}

TEST(JumpSampler, MatchesGeometricLawChiSquared) {
  // skip ~ Geometric(p) on {0, 1, ...} with p = active/total.  Bin 50k
  // inversion samples against the exact pmf; the seed is fixed, so the
  // statistic is reproducible — the 0.1% critical value guards against
  // regressions in the inversion, not against sampling noise.
  rng gen(321);
  const std::uint64_t active = 3, total = 16;
  const double p = static_cast<double>(active) / static_cast<double>(total);
  const int draws = 50000;
  constexpr int kBins = 20;  // 0..18 plus a >= 19 tail bin
  std::vector<std::uint64_t> counts(kBins, 0);
  for (int i = 0; i < draws; ++i) {
    const auto s = sample_silent_run([&] { return gen.uniform01(); }, active,
                                     total, 1u << 30);
    ++counts[std::min<std::uint64_t>(s, kBins - 1)];
  }
  double chi2 = 0.0;
  double tail = 1.0;  // P(skip >= kBins - 1)
  for (int b = 0; b + 1 < kBins; ++b) {
    const double pb = std::pow(1.0 - p, b) * p;
    tail -= pb;
    const double expected = draws * pb;
    const double d = static_cast<double>(counts[b]) - expected;
    chi2 += d * d / expected;
  }
  const double d = static_cast<double>(counts[kBins - 1]) - draws * tail;
  chi2 += d * d / (draws * tail);
  // df = 19; the 0.001 critical value is 43.8.
  EXPECT_LT(chi2, 43.8);
}

// ----------------------------------------------- active set bookkeeping

TEST(ActivePairSet, ToggleAndSwapRemoval) {
  active_pair_set s(6);
  EXPECT_EQ(s.size(), 0u);
  s.set(2, true);
  s.set(4, true);
  s.set(5, true);
  EXPECT_EQ(s.size(), 3u);
  s.set(4, true);  // idempotent insert
  EXPECT_EQ(s.size(), 3u);
  s.set(2, false);  // swap-with-last removal keeps the others present
  EXPECT_EQ(s.size(), 2u);
  std::vector<std::uint32_t> members;
  for (std::uint64_t i = 0; i < s.size(); ++i) members.push_back(s.at(i));
  std::sort(members.begin(), members.end());
  EXPECT_EQ(members, (std::vector<std::uint32_t>{4, 5}));
  s.set(2, false);  // idempotent removal
  EXPECT_EQ(s.size(), 2u);
  s.set(5, false);
  s.set(4, false);
  EXPECT_EQ(s.size(), 0u);
  s.set(0, true);  // reusable after draining
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.at(0), 0u);
}

TEST(SilentAdjacency, IncidenceRowsCoverEveryEdgeTwice) {
  rng gen(77);
  const graph g = make_connected_erdos_renyi(24, 0.2, gen);
  const silent_adjacency adj(g);
  const auto n = static_cast<std::size_t>(g.num_nodes());
  const auto m = static_cast<std::size_t>(g.num_edges());
  ASSERT_EQ(adj.offsets.size(), n + 1);
  ASSERT_EQ(adj.entries.size(), 2 * m);
  EXPECT_GT(adj.bytes(), 0u);
  // Row v holds exactly the edges incident to v (each once, both endpoints
  // of edge j list j), so every edge index appears exactly twice overall.
  std::vector<int> seen(m, 0);
  for (std::size_t v = 0; v < n; ++v) {
    const auto row = adj.row(v);
    EXPECT_EQ(row.size(), static_cast<std::size_t>(
                              g.degree(static_cast<node_id>(v))));
    for (const std::uint32_t j : row) {
      ASSERT_LT(j, m);
      const edge& e = g.edges()[j];
      EXPECT_TRUE(e.u == static_cast<node_id>(v) ||
                  e.v == static_cast<node_id>(v));
      ++seen[j];
    }
  }
  for (std::size_t j = 0; j < m; ++j) EXPECT_EQ(seen[j], 2) << "edge " << j;
}

// ---------------------------------------------------------------- scheduler

sim_options silent_options(std::uint64_t max_steps =
                               std::numeric_limits<std::uint64_t>::max()) {
  sim_options o;
  o.scheduler = scheduler_kind::silent;
  o.max_steps = max_steps;
  return o;
}

// The backup-dominated fast-protocol regime: a low elimination threshold
// hands off to the Beauquier backup quickly, and the two-token endgame is
// almost entirely silent — the regime the scheduler exists for.
fast_params backup_regime_params() {
  fast_params p;
  p.h = 4;
  p.level_threshold = 8;
  p.max_level = 9;
  return p;
}

TEST(SilentScheduler, DeterministicForFixedSeed) {
  rng gg(5);
  const graph g = make_random_regular(64, 4, gg);
  const fast_protocol proto(backup_regime_params());
  const tuned_runner<fast_protocol> runner(proto, g);
  const auto a = runner.run(rng(21), silent_options());
  const auto b = runner.run(rng(21), silent_options());
  EXPECT_TRUE(a.stabilized);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.leader, b.leader);
  const auto c = runner.run(rng(22), silent_options());
  EXPECT_NE(a.steps, c.steps);  // different seed, different trajectory
}

TEST(SilentScheduler, RespectsMaxStepsExactly) {
  // Every fast-phase interaction ticks a streak clock, so nothing has
  // stabilized by step 1000 on n = 64 and the cap must land exactly.
  const graph g = make_cycle(64);
  const fast_protocol proto(fast_params::practical_clique(64));
  const tuned_runner<fast_protocol> runner(proto, g);
  const auto r = runner.run(rng(3), silent_options(1000));
  EXPECT_FALSE(r.stabilized);
  EXPECT_EQ(r.steps, 1000u);
  EXPECT_EQ(r.leader, -1);
}

TEST(SilentScheduler, FrozenConfigurationJumpsToCapInstantly) {
  // The star protocol deadlocks on general graphs whenever two undecided-
  // undecided interactions fire on non-adjacent edges: several leaders,
  // every pair silent, the tracker never fires.  The active set empties and
  // run_silent must deliver the reference engine's t → max_steps spin in
  // O(1) — a budget of 10^15 steps would take a per-step engine days.
  const graph g = make_cycle(6);
  const star_protocol proto;
  const tuned_runner<star_protocol> runner(proto, g);
  const std::uint64_t budget = 1'000'000'000'000'000ull;
  int deadlocks = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto r = runner.run(rng(seed), silent_options(budget));
    if (r.stabilized) {
      EXPECT_GE(r.leader, 0) << "seed " << seed;
      EXPECT_LT(r.steps, budget) << "seed " << seed;
    } else {
      EXPECT_EQ(r.steps, budget) << "seed " << seed;
      EXPECT_EQ(r.leader, -1) << "seed " << seed;
      ++deadlocks;
    }
  }
  // On C6 a maximal independent set has >= 2 nodes, so multi-leader
  // deadlocks are common; with these 8 fixed seeds at least one occurs.
  EXPECT_GE(deadlocks, 1);
}

TEST(SilentScheduler, ElectsInOneStepOnStars) {
  // Edge-census path: on a star every oriented pair is initially active and
  // the first interaction decides the centre and stabilizes the predicate.
  const star_protocol proto;
  for (const node_id n : {2, 5, 100}) {
    const graph g = make_star(n);
    const tuned_runner<star_protocol> runner(proto, g);
    const auto r = runner.run(rng(static_cast<std::uint64_t>(n)),
                              silent_options());
    ASSERT_TRUE(r.stabilized) << "n=" << n;
    EXPECT_EQ(r.steps, 1u) << "n=" << n;
    EXPECT_GE(r.leader, 0) << "n=" << n;
  }
}

TEST(SilentScheduler, CensusCountsStatesTouched) {
  rng gg(9);
  const graph g = make_random_regular(96, 4, gg);
  const fast_protocol proto(backup_regime_params());
  const tuned_runner<fast_protocol> runner(proto, g);
  sim_options o = silent_options();
  o.state_census = true;
  const auto r = runner.run(rng(14), o);
  EXPECT_TRUE(r.stabilized);
  // The run passes through fast-phase levels and the backup hand-off, so
  // well more than the initial state is touched.
  EXPECT_GE(r.distinct_states_used, 3u);
}

TEST(SilentScheduler, ProbeRecordsActiveSetTrajectory) {
  // Token-based Beauquier is silent-rich from step one (only the two
  // token-holder pairs' orientations are ever active), so the trajectory is
  // guaranteed samples at a small stride.
  const graph g = make_grid_2d(8, 8, false);
  const beauquier_protocol proto(64);
  const tuned_runner<beauquier_protocol> runner(proto, g);
  obs::run_probe probe(64);
  const auto r = runner.run(rng(8), silent_options(), &probe);
  EXPECT_TRUE(r.stabilized);
  const auto& st = probe.stats();
  EXPECT_EQ(st.steps, r.steps);
  EXPECT_GT(st.active_steps, 0u);
  EXPECT_LT(st.active_steps, st.steps);  // non-token pairs are silent
  ASSERT_FALSE(st.active_sets.empty());
  const std::uint64_t two_m = 2 * static_cast<std::uint64_t>(g.num_edges());
  std::uint64_t prev_step = 0;
  for (const auto& s : st.active_sets) {
    EXPECT_GE(s.step, prev_step);
    EXPECT_LE(s.active_pairs, two_m);
    prev_step = s.step;
  }
}

// ------------------------------------------------- statistical agreement

// Step-scheduler vs silent-scheduler stabilization times on the same runner
// (different seeds for independence), gated by the shared 3σ check.
template <typename P>
void expect_scheduler_agreement(const tuned_runner<P>& runner, int trials,
                                std::uint64_t seed, const std::string& label) {
  const auto step = measure_election_tuned(runner, trials, rng(seed));
  const auto silent =
      measure_election_tuned(runner, trials, rng(seed + 1), silent_options());
  stat_gate::expect_step_agreement(step, silent, label);
}

TEST(SilentScheduler, AgreesWithStepSchedulerBeauquier) {
  // Token-based Beauquier is silent-rich from step one (only token-holder
  // pairs are active) — the node-census predicate path.
  const graph g = make_grid_2d(6, 6, false);
  const beauquier_protocol proto(36);
  const tuned_runner<beauquier_protocol> runner(proto, g);
  expect_scheduler_agreement(runner, stat_gate::kAgreementTrials, 501,
                             "silent vs step: beauquier grid");
}

TEST(SilentScheduler, AgreesWithStepSchedulerFastBackupRegime) {
  // The backup-dominated fast protocol: fast phase (every step active),
  // hand-off, then the two-token silent endgame — the full activity range.
  rng gg(61);
  const graph g = make_random_regular(256, 8, gg);
  const fast_protocol proto(backup_regime_params());
  const tuned_runner<fast_protocol> runner(proto, g);
  expect_scheduler_agreement(runner, stat_gate::kAgreementTrials, 601,
                             "silent vs step: fast backup regime");
}

TEST(SilentScheduler, AgreesWithStepSchedulerFastDefaultParams) {
  // Default practical parameters at small n: the fast phase dominates and
  // nearly every step is active — the scheduler's worst case must still be
  // distributionally exact.
  const graph g = make_cycle(128);
  const fast_protocol proto(fast_params::practical_clique(128));
  const tuned_runner<fast_protocol> runner(proto, g);
  expect_scheduler_agreement(runner, stat_gate::kAgreementTrials, 701,
                             "silent vs step: fast default params");
}

}  // namespace
}  // namespace pp
