// The packed-width engine (run_packed / tuned_runner) against the PR 2 lazy
// u32 engine: at natural order every width must be bit-identical per seed —
// same steps, leader, stabilization flag and census — across the protocol ×
// family matrix; forced widths that do not fit fail loudly; reordered runs
// agree statistically (the relabel property tests live in test_reorder.cpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "core/beauquier.h"
#include "core/fast_election.h"
#include "core/majority.h"
#include "engine/engine.h"
#include "graph/generators.h"

namespace pp {
namespace {

TEST(PackedEntry, Sizes) {
  EXPECT_EQ(sizeof(packed_entry<std::uint8_t>), 4u);
  EXPECT_EQ(sizeof(packed_entry<std::uint16_t>), 8u);
  EXPECT_EQ(sizeof(packed_entry<std::uint32_t>), 12u);
}

TEST(PackedEntry, NibbleDeltaRoundtrip) {
  // Every 4-tuple over the nibble range survives encode/decode, and the
  // zero-word test matches "all deltas zero" exactly.
  for (int d0 = -8; d0 <= 7; ++d0) {
    for (int d1 = -8; d1 <= 7; ++d1) {
      for (int d2 = -8; d2 <= 7; ++d2) {
        for (int d3 : {-8, -2, -1, 0, 1, 2, 7}) {
          packed_entry<std::uint8_t> e;
          const std::array<std::int8_t, kMaxCensusCounters> d = {
              static_cast<std::int8_t>(d0), static_cast<std::int8_t>(d1),
              static_cast<std::int8_t>(d2), static_cast<std::int8_t>(d3)};
          e.delta = packed_entry<std::uint8_t>::encode_delta(d);
          for (int c = 0; c < kMaxCensusCounters; ++c) {
            ASSERT_EQ(e.delta_of(c), d[static_cast<std::size_t>(c)]);
          }
          ASSERT_EQ(e.delta_nonzero(), d0 != 0 || d1 != 0 || d2 != 0 || d3 != 0);
        }
      }
    }
  }
}

TEST(PackedTable, SnapshotsMatchClosedEntries) {
  const beauquier_protocol proto(16);
  compiled_protocol<beauquier_protocol> compiled(proto);
  for (node_id v = 0; v < 16; ++v) compiled.intern(proto.initial_state(v));
  ASSERT_TRUE(compiled.close(64));
  ASSERT_TRUE(compiled.deltas_fit_nibble());

  const packed_table<std::uint8_t, beauquier_protocol> t8(compiled);
  const packed_table<std::uint16_t, beauquier_protocol> t16(compiled);
  const packed_table<std::uint32_t, beauquier_protocol> t32(compiled);
  const auto k = compiled.num_states();
  ASSERT_EQ(t8.num_states(), k);
  EXPECT_EQ(t8.bytes(), k * k * 4);
  EXPECT_EQ(t16.bytes(), k * k * 8);
  for (std::size_t a = 0; a < k; ++a) {
    for (std::size_t b = 0; b < k; ++b) {
      const auto& e = compiled.closed_transition(static_cast<std::uint32_t>(a),
                                                 static_cast<std::uint32_t>(b));
      ASSERT_EQ(t8.at(a, b).a2, e.a2);
      ASSERT_EQ(t8.at(a, b).b2, e.b2);
      ASSERT_EQ(t16.at(a, b).a2, e.a2);
      ASSERT_EQ(t32.at(a, b).a2, e.a2);
      for (int c = 0; c < census_traits<beauquier_protocol>::kCounters; ++c) {
        const auto i = static_cast<std::size_t>(c);
        ASSERT_EQ(t8.at(a, b).delta_of(c), e.delta[i]);
        ASSERT_EQ(t16.at(a, b).delta_of(c), e.delta[i]);
        ASSERT_EQ(t32.at(a, b).delta_of(c), e.delta[i]);
      }
    }
  }
}

std::vector<std::pair<std::string, graph>> test_families() {
  rng gen(7);
  std::vector<std::pair<std::string, graph>> fams;
  fams.emplace_back("clique", make_clique(24));
  fams.emplace_back("ring", make_cycle(33));
  fams.emplace_back("grid", make_grid_2d(5, 6, false));
  return fams;
}

// Natural-order packed runs at every admissible width produce exactly the
// reference engine's result for the same seed.
template <typename MakeProto>
void expect_widths_bit_identical(const MakeProto& make_proto,
                                 const sim_options& options,
                                 std::uint64_t seed_base) {
  for (const auto& [name, g] : test_families()) {
    const auto proto = make_proto(g.num_nodes());
    using P = decltype(make_proto(0));

    // Which widths fit is a property of the closed table.
    compiled_protocol<P> compiled(proto);
    for (node_id v = 0; v < g.num_nodes(); ++v) {
      compiled.intern(proto.initial_state(v));
    }
    ASSERT_TRUE(compiled.close(kEngineClosureBudget)) << name;
    std::vector<int> widths{0, 16, 32};  // auto, u16, u32
    if (compiled.num_states() <= 256 && compiled.deltas_fit_nibble()) {
      widths.push_back(8);
    }

    rng seed(seed_base);
    for (std::uint64_t t = 0; t < 4; ++t) {
      const auto ref = run_until_stable_fast(proto, g, seed.fork(t), options);
      for (const int bits : widths) {
        const tuned_runner<P> runner(proto, g, {vertex_order::natural, bits});
        const auto packed = runner.run(seed.fork(t), options);
        ASSERT_EQ(ref.stabilized, packed.stabilized)
            << name << " bits=" << bits << " trial " << t;
        ASSERT_EQ(ref.steps, packed.steps)
            << name << " bits=" << bits << " trial " << t;
        ASSERT_EQ(ref.leader, packed.leader)
            << name << " bits=" << bits << " trial " << t;
        ASSERT_EQ(ref.distinct_states_used, packed.distinct_states_used)
            << name << " bits=" << bits << " trial " << t;
      }
    }
  }
}

TEST(PackedEngine, FastProtocolBitIdenticalAcrossWidths) {
  expect_widths_bit_identical(
      [](node_id) { return fast_protocol(fast_params{}); }, {}, 31);
}

TEST(PackedEngine, FastProtocolWithCensusBitIdentical) {
  expect_widths_bit_identical(
      [](node_id) { return fast_protocol(fast_params{}); },
      {.state_census = true}, 32);
}

TEST(PackedEngine, BeauquierBitIdenticalAcrossWidths) {
  expect_widths_bit_identical([](node_id n) { return beauquier_protocol(n); },
                              {.state_census = true}, 33);
}

TEST(PackedEngine, MajorityBitIdenticalAcrossWidths) {
  expect_widths_bit_identical(
      [](node_id n) {
        rng votes_gen(34);
        return majority_protocol(random_vote_assignment(n, (2 * n) / 3, votes_gen));
      },
      {}, 35);
}

TEST(PackedEngine, AutoWidthPicksNarrowestFit) {
  const graph g = make_cycle(20);
  const beauquier_protocol proto(20);  // |Λ| = 5 -> u8
  const tuned_runner<beauquier_protocol> r8(proto, g);
  EXPECT_EQ(r8.pack_bits(), 8);
  EXPECT_TRUE(r8.packed());

  fast_params params;  // |Λ| = 863 with these constants -> u16
  params.h = 6;
  params.level_threshold = 20;
  params.max_level = 80;
  const fast_protocol fast(params);
  const tuned_runner<fast_protocol> r16(fast, g);
  EXPECT_EQ(r16.pack_bits(), 16);
}

TEST(PackedEngine, TooNarrowForcedWidthFailsLoudly) {
  const graph g = make_cycle(20);
  fast_params params;
  params.h = 6;
  params.level_threshold = 20;
  params.max_level = 80;
  const fast_protocol proto(params);
  {
    // Guard: the reachable space really is beyond u8.
    compiled_protocol<fast_protocol> compiled(proto);
    compiled.intern(proto.initial_state(0));
    ASSERT_TRUE(compiled.close(kEngineClosureBudget));
    ASSERT_GT(compiled.num_states(), 256u);
  }
  EXPECT_THROW(
      (tuned_runner<fast_protocol>(proto, g, {vertex_order::natural, 8})),
      std::invalid_argument);
}

TEST(PackedEngine, MaxStepsCapMatchesReference) {
  const graph g = make_cycle(48);
  const beauquier_protocol proto(48);
  const sim_options options{.max_steps = 500, .state_census = true};
  const auto ref = run_until_stable(proto, g, rng(17), options);
  for (const int bits : {8, 16, 32}) {
    const tuned_runner<beauquier_protocol> runner(proto, g,
                                                  {vertex_order::natural, bits});
    const auto packed = runner.run(rng(17), options);
    EXPECT_FALSE(packed.stabilized);
    EXPECT_EQ(ref.steps, packed.steps);
    EXPECT_EQ(packed.steps, 500u);
    EXPECT_EQ(ref.leader, packed.leader);
    EXPECT_EQ(ref.distinct_states_used, packed.distinct_states_used);
  }
}

TEST(PackedEngine, ClosureBudgetFallbackMatchesLazyEngine) {
  // A reachable space beyond the closure budget degrades to lazy u32 tables;
  // the summary must still match measure_election / measure_election_fast.
  const graph g = make_clique(12);
  fast_params params;
  params.h = 8;
  params.level_threshold = 600;
  params.max_level = 60000;
  const fast_protocol proto(params);
  const sim_options options{.max_steps = 20000};
  const tuned_runner<fast_protocol> runner(proto, g);
  EXPECT_FALSE(runner.packed());
  EXPECT_EQ(runner.pack_bits(), 32);
  const auto ref = measure_election_fast(proto, g, 4, rng(23), options);
  const auto tuned = measure_election_tuned(proto, g, 4, rng(23), options);
  EXPECT_DOUBLE_EQ(ref.stabilized_fraction, tuned.stabilized_fraction);
  EXPECT_DOUBLE_EQ(ref.steps.mean, tuned.steps.mean);
  // ...and forcing a packed width on an unclosable table is refused.
  EXPECT_THROW(
      (tuned_runner<fast_protocol>(proto, g, {vertex_order::natural, 16})),
      std::invalid_argument);
}

TEST(PackedEngine, MeasureTunedNaturalMatchesMeasureFast) {
  rng gen(21);
  const graph g = make_connected_erdos_renyi(32, 0.2, gen);
  const beauquier_protocol proto(32);
  const auto fast = measure_election_fast(proto, g, 12, rng(22));
  const auto tuned = measure_election_tuned(proto, g, 12, rng(22));
  EXPECT_DOUBLE_EQ(fast.steps.mean, tuned.steps.mean);
  EXPECT_DOUBLE_EQ(fast.stabilized_fraction, tuned.stabilized_fraction);
}

TEST(PackedEngine, WorkingSetAccountingIsConsistent) {
  const graph g = make_cycle(64);
  const beauquier_protocol proto(64);
  const tuned_runner<beauquier_protocol> runner(proto, g);
  ASSERT_EQ(runner.pack_bits(), 8);
  const std::size_t k = runner.compiled().num_states();
  // config (64 x 1B) + packed table (k² x 4B) + u16 endpoint pairs (64 x 4B).
  EXPECT_EQ(runner.working_set_bytes(), 64u * 1 + k * k * 4 + 64u * 4);
  // One u16 pair + one packed entry + two config words.
  EXPECT_EQ(runner.bytes_per_step(), 4u + 4u + 2u * 1);
}

}  // namespace
}  // namespace pp
