#include "graph/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"

namespace pp {
namespace {

TEST(Bfs, DistancesOnPath) {
  const graph g = make_path(5);
  const auto d = bfs_distances(g, 0);
  for (node_id v = 0; v < 5; ++v) EXPECT_EQ(d[static_cast<std::size_t>(v)], v);
}

TEST(Bfs, UnreachableMarked) {
  const graph g = graph::from_edges(4, {{0, 1}, {2, 3}});
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], unreachable);
  EXPECT_EQ(d[3], unreachable);
}

TEST(Bandwidth, KnownValues) {
  EXPECT_EQ(bandwidth(make_path(8)), 1);          // consecutive labels
  EXPECT_EQ(bandwidth(make_cycle(8)), 7);         // the wrap edge {0, n-1}
  EXPECT_EQ(bandwidth(make_clique(6)), 5);        // edge {0, n-1} exists
  EXPECT_EQ(bandwidth(make_grid_2d(3, 5, false)), 5);  // row-major: cols
  EXPECT_EQ(bandwidth(graph::from_edges(1, {})), 0);   // edgeless
}

TEST(Connectivity, DetectsComponents) {
  EXPECT_TRUE(is_connected(make_cycle(10)));
  EXPECT_FALSE(is_connected(graph::from_edges(3, {{0, 1}})));
  EXPECT_TRUE(is_connected(graph::from_edges(1, {})));
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(make_clique(9)), 1);
  EXPECT_EQ(diameter(make_cycle(10)), 5);
  EXPECT_EQ(diameter(make_cycle(11)), 5);
  EXPECT_EQ(diameter(make_path(9)), 8);
  EXPECT_EQ(diameter(make_star(20)), 2);
  EXPECT_EQ(diameter(make_grid_2d(5, 5, true)), 4);
}

TEST(Diameter, LowerBoundIsTightOnTreesAndCycles) {
  rng gen(1);
  EXPECT_EQ(diameter_lower_bound(make_path(30), 3, gen), 29);
  EXPECT_EQ(diameter_lower_bound(make_binary_tree(31), 3, gen),
            diameter(make_binary_tree(31)));
  rng gen2(2);
  EXPECT_LE(diameter_lower_bound(make_cycle(30), 3, gen2), 15);
}

TEST(Eccentricity, CentreVsLeafOfStar) {
  const graph g = make_star(12);
  EXPECT_EQ(eccentricity(g, 0), 1);
  EXPECT_EQ(eccentricity(g, 5), 2);
}

TEST(EdgeBoundary, HalvesOfCycle) {
  const graph g = make_cycle(10);
  std::vector<bool> half(10, false);
  for (int v = 0; v < 5; ++v) half[v] = true;
  EXPECT_EQ(edge_boundary(g, half), 2);
}

TEST(EdgeBoundary, SingletonIsDegree) {
  const graph g = make_star(8);
  std::vector<bool> s(8, false);
  s[0] = true;
  EXPECT_EQ(edge_boundary(g, s), 7);
  std::fill(s.begin(), s.end(), false);
  s[3] = true;
  EXPECT_EQ(edge_boundary(g, s), 1);
}

TEST(EdgeExpansion, CycleExact) {
  // β(C_n) = 2 / floor(n/2): the minimising set is a half-arc.
  const graph g = make_cycle(12);
  EXPECT_NEAR(edge_expansion_exact(g), 2.0 / 6.0, 1e-12);
}

TEST(EdgeExpansion, CliqueExact) {
  // β(K_n) = ceil(n/2): removing a half leaves |S|·(n-|S|) boundary edges,
  // minimised at |S| = floor(n/2).
  const graph g = make_clique(8);
  EXPECT_NEAR(edge_expansion_exact(g), 4.0, 1e-12);
}

TEST(EdgeExpansion, StarExact) {
  // Leaf sets not containing the centre have |∂S| = |S|.
  const graph g = make_star(9);
  EXPECT_NEAR(edge_expansion_exact(g), 1.0, 1e-12);
}

TEST(EdgeExpansion, BarbellIsSmall) {
  const graph g = make_barbell(5, 0);
  // Cutting at the bridge: one edge over 5 nodes.
  EXPECT_NEAR(edge_expansion_exact(g), 1.0 / 5.0, 1e-12);
}

TEST(EdgeExpansion, SweepUpperBoundsExact) {
  rng gen(3);
  for (const auto& g :
       {make_cycle(14), make_star(14), make_barbell(5, 2), make_clique(10)}) {
    const double exact = edge_expansion_exact(g);
    rng local = gen.fork(static_cast<std::uint64_t>(g.num_edges()));
    const double sweep = edge_expansion_sweep(g, 6, local);
    EXPECT_GE(sweep, exact - 1e-12);
  }
}

TEST(EdgeExpansion, SweepTightOnCycleAndBarbell) {
  rng gen(4);
  EXPECT_NEAR(edge_expansion_sweep(make_cycle(40), 8, gen), 2.0 / 20.0, 1e-12);
  rng gen2(5);
  EXPECT_NEAR(edge_expansion_sweep(make_barbell(6, 0), 8, gen2), 1.0 / 6.0, 1e-12);
}

TEST(EdgeExpansion, ExactRejectsLargeGraphs) {
  EXPECT_THROW(edge_expansion_exact(make_cycle(30)), std::invalid_argument);
}

TEST(Conductance, RegularGraphFormula) {
  const graph g = make_cycle(12);
  const double beta = edge_expansion_exact(g);
  EXPECT_NEAR(conductance_from_expansion(g, beta), beta / 2.0, 1e-12);
}

}  // namespace
}  // namespace pp
