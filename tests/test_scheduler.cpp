#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include <map>

#include "graph/generators.h"

namespace pp {
namespace {

TEST(Scheduler, SamplesOnlyAdjacentOrderedPairs) {
  const graph g = make_path(4);
  edge_scheduler sched(g, rng(1));
  for (int i = 0; i < 5000; ++i) {
    const interaction it = sched.next();
    EXPECT_TRUE(g.has_edge(it.initiator, it.responder));
    EXPECT_NE(it.initiator, it.responder);
  }
}

TEST(Scheduler, CountsSteps) {
  const graph g = make_cycle(5);
  edge_scheduler sched(g, rng(2));
  EXPECT_EQ(sched.steps(), 0u);
  sched.next();
  sched.next();
  EXPECT_EQ(sched.steps(), 2u);
  sched.skip(10);
  EXPECT_EQ(sched.steps(), 12u);
}

TEST(Scheduler, UniformOverOrderedPairs) {
  const graph g = make_cycle(4);  // 4 edges, 8 ordered pairs
  edge_scheduler sched(g, rng(3));
  std::map<std::pair<node_id, node_id>, int> count;
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) {
    const interaction it = sched.next();
    ++count[{it.initiator, it.responder}];
  }
  ASSERT_EQ(count.size(), 8u);
  const double expected = draws / 8.0;
  double chi2 = 0.0;
  for (const auto& [pair, c] : count) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // 7 dof, 99.9th percentile ~ 24.3.
  EXPECT_LT(chi2, 26.0);
}

TEST(Scheduler, BothOrientationsAppear) {
  const graph g = graph::from_edges(2, {{0, 1}});
  edge_scheduler sched(g, rng(4));
  int forward = 0;
  int backward = 0;
  for (int i = 0; i < 1000; ++i) {
    const interaction it = sched.next();
    if (it.initiator == 0) ++forward;
    if (it.initiator == 1) ++backward;
  }
  EXPECT_GT(forward, 400);
  EXPECT_GT(backward, 400);
}

TEST(Scheduler, DeterministicGivenSeed) {
  const graph g = make_clique(6);
  edge_scheduler a(g, rng(99));
  edge_scheduler b(g, rng(99));
  for (int i = 0; i < 1000; ++i) {
    const interaction x = a.next();
    const interaction y = b.next();
    EXPECT_EQ(x.initiator, y.initiator);
    EXPECT_EQ(x.responder, y.responder);
  }
}

TEST(Scheduler, RejectsEdgelessGraph) {
  const graph g = graph::from_edges(3, {});
  EXPECT_THROW(edge_scheduler(g, rng(1)), std::invalid_argument);
}

TEST(Scheduler, GeometricStepsHasRightMean) {
  const graph g = make_clique(4);
  edge_scheduler sched(g, rng(5));
  const double p = 0.1;
  double total = 0.0;
  const int draws = 50000;
  for (int i = 0; i < draws; ++i) total += static_cast<double>(sched.geometric_steps(p));
  EXPECT_NEAR(total / draws, 1.0 / p, 0.3);
}

}  // namespace
}  // namespace pp
