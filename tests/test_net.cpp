// Socket transport + resident daemon (src/fleet/net.h, src/fleet/service.h):
// strict host parsing, handshake encode/decode, and the end-to-end contract
// a distributed sweep lives by — a loopback popsimd serves chunks whose
// merged results are byte-identical to the serial sweep, through every
// network fault kind, cache state and rejection path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/fast_election.h"
#include "dynamics/epidemic.h"
#include "fleet/artifact.h"
#include "fleet/fault.h"
#include "fleet/journal.h"
#include "fleet/net.h"
#include "fleet/service.h"
#include "fleet/supervisor.h"
#include "fleet/sweep.h"
#include "graph/generators.h"
#include "obs/metrics.h"

namespace pp::fleet {
namespace {

// Sanitizer builds run the engine an order of magnitude slower, so the
// inactivity timeout armed by the stall test must stay above a healthy
// worker's sanitized inter-record gap or the supervisor reclaims live
// connections and drains the retry budget on them.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr int kStallTimeoutMs = 10'000;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr int kStallTimeoutMs = 10'000;
#else
constexpr int kStallTimeoutMs = 250;
#endif
#else
constexpr int kStallTimeoutMs = 250;
#endif

TEST(NetParse, AcceptsHostPortAndRejectsEverythingElse) {
  net::host_addr addr;
  ASSERT_TRUE(net::parse_host("127.0.0.1:9000", addr));
  EXPECT_EQ(addr.host, "127.0.0.1");
  EXPECT_EQ(addr.port, 9000);
  ASSERT_TRUE(net::parse_host("node-7.cluster:65535", addr));
  EXPECT_EQ(addr.host, "node-7.cluster");
  EXPECT_EQ(addr.port, 65535);

  for (const char* bad : {"", "localhost", ":9000", "host:", "host:0",
                          "host:65536", "host:-1", "host:port", "host:90x"}) {
    EXPECT_FALSE(net::parse_host(bad, addr)) << "'" << bad << "'";
  }
}

TEST(NetParse, HostListsAreAllOrNothing) {
  std::vector<net::host_addr> hosts;
  ASSERT_TRUE(net::parse_host_list("a:1,b:2,c:3", hosts));
  ASSERT_EQ(hosts.size(), 3u);
  EXPECT_EQ(hosts[1].host, "b");
  EXPECT_EQ(hosts[2].port, 3);

  for (const char* bad : {"", ",", "a:1,", ",a:1", "a:1,,b:2", "a:1,b:0"}) {
    EXPECT_FALSE(net::parse_host_list(bad, hosts)) << "'" << bad << "'";
  }
}

TEST(NetHandshake, SweepRequestRoundTrips) {
  net::sweep_request request;
  request.artifact_checksum = 0x0123456789abcdefull;
  request.artifact_size = 4096;
  request.slot = 7;
  request.seed = 99;
  request.trials = 1000;
  request.base = 250;
  request.count = 250;
  request.max_steps = 123456;
  request.wellmixed_batch = 64;
  request.faults = "drop:w7:after=2";

  const auto payload = net::encode_sweep_request(request);
  net::sweep_request decoded;
  ASSERT_TRUE(net::decode_sweep_request(payload.data(), payload.size(), decoded));
  EXPECT_EQ(decoded, request);
}

TEST(NetHandshake, MalformedRequestsAreRejected) {
  net::sweep_request request;
  request.count = 1;
  const auto payload = net::encode_sweep_request(request);
  net::sweep_request decoded;
  // Every truncation must fail loudly, not misparse.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(net::decode_sweep_request(payload.data(), cut, decoded))
        << cut << "-byte prefix";
  }
  // Trailing junk disagrees with the declared fault-spec length.
  auto padded = payload;
  padded.push_back(0);
  EXPECT_FALSE(net::decode_sweep_request(padded.data(), padded.size(), decoded));
  // A different message type is not a sweep request.
  auto wrong = payload;
  wrong[0] = static_cast<std::uint8_t>(net::msg_type::artifact_data);
  EXPECT_FALSE(net::decode_sweep_request(wrong.data(), wrong.size(), decoded));
}

// ---------------------------------------------------------------------------
// End-to-end sweeps against a loopback popsimd.  One shared fixture builds a
// real compiled-engine artifact; each test talks to its own daemon so cache
// state never leaks between them.

class RemoteSweep : public ::testing::Test {
 protected:
  void SetUp() override {
    g_.emplace(make_cycle(200));
    const graph& g = *g_;  // the runner borrows the graph for its lifetime
    const fast_protocol proto(fast_params::practical(
        g, estimate_worst_case_broadcast_time(g, 5, 3, rng(3)).value));
    runner_.emplace(proto, g);
    artifact_path_ = testing::TempDir() + "/net_sweep.ppaf";
    save_artifact(
        make_tuned_artifact(*runner_, g, "cycle", fast_desc(proto.params())),
        artifact_path_);
    manifest_.artifact_path = artifact_path_;
    manifest_.seed = 41;
    manifest_.trials = 12;
    serial_ = fleet_run(
        manifest_.trials, rng(manifest_.seed).fork(2),
        [&](std::uint64_t, rng gen) { return runner_->run(gen); }, 1);
  }

  void TearDown() override { std::remove(artifact_path_.c_str()); }

  void expect_serial(const std::vector<election_result>& got) {
    ASSERT_EQ(got.size(), serial_.size());
    for (std::size_t t = 0; t < serial_.size(); ++t) {
      EXPECT_EQ(serial_[t].steps, got[t].steps) << "trial " << t;
      EXPECT_EQ(serial_[t].leader, got[t].leader) << "trial " << t;
      EXPECT_EQ(serial_[t].stabilized, got[t].stabilized) << "trial " << t;
    }
  }

  std::vector<net::host_addr> loopback(std::uint16_t port, int copies) {
    return std::vector<net::host_addr>(
        static_cast<std::size_t>(copies), net::host_addr{"127.0.0.1", port});
  }

  std::optional<graph> g_;
  std::optional<tuned_runner<fast_protocol>> runner_;
  std::string artifact_path_;
  worker_manifest manifest_;
  std::vector<election_result> serial_;
};

TEST_F(RemoteSweep, MatchesSerialByteIdentically) {
  const service_process daemon(service_options{});
  const auto results = net::supervised_remote_sweep(
      loopback(daemon.port(), 2), 2, manifest_, {});
  expect_serial(results);
}

TEST_F(RemoteSweep, SecondSweepHitsTheArtifactCache) {
  const service_process daemon(service_options{});
  const auto hosts = loopback(daemon.port(), 1);
  obs::metrics_registry cold;
  supervise_options options;
  options.metrics = &cold;
  expect_serial(net::supervised_remote_sweep(hosts, 2, manifest_, options));
  EXPECT_EQ(cold.counter("fleet.net.artifacts_shipped"), 1u);

  obs::metrics_registry warm;
  options.metrics = &warm;
  expect_serial(net::supervised_remote_sweep(hosts, 2, manifest_, options));
  EXPECT_EQ(warm.counter("fleet.net.artifacts_shipped"), 0u);
  EXPECT_EQ(warm.counter("fleet.net.connects"), 2u);
}

TEST_F(RemoteSweep, RecoversFromConnectionFaultsByteIdentically) {
  // drop severs the socket with an RST mid-stream, torn leaves half a frame,
  // garbage delivers a well-framed record whose checksum cannot match.  In
  // every case the replacement connection re-runs the slot's remaining
  // trials and the merged sweep is indistinguishable from an unfaulted one.
  for (const fault_kind kind :
       {fault_kind::drop, fault_kind::torn, fault_kind::garbage}) {
    const service_process daemon(service_options{});
    obs::metrics_registry metrics;
    supervise_options options;
    options.faults = {{kind, 0, 1}};
    options.metrics = &metrics;
    const auto results = net::supervised_remote_sweep(
        loopback(daemon.port(), 1), 2, manifest_, options);
    expect_serial(results);
    EXPECT_GE(metrics.counter("fleet.net.reconnects"), 1u)
        << to_string(fault_spec{kind, 0, 1});
    EXPECT_EQ(metrics.counter("fleet.records_received"), manifest_.trials);
  }
}

TEST_F(RemoteSweep, StalledConnectionIsReclaimedByTheTimeout) {
  const service_process daemon(service_options{});
  obs::metrics_registry metrics;
  supervise_options options;
  options.faults = {{fault_kind::stall, 1, 2}};
  options.worker_timeout_ms = kStallTimeoutMs;
  options.metrics = &metrics;
  const auto results = net::supervised_remote_sweep(
      loopback(daemon.port(), 2), 2, manifest_, options);
  expect_serial(results);
  EXPECT_GE(metrics.counter("fleet.net.reconnects"), 1u);
}

TEST_F(RemoteSweep, DeadHostDegradesToInlineExecution) {
  // Nothing listens on the reserved port 1: every connect fails, the retry
  // budget drains, and the supervisor's inline tail still completes the
  // sweep byte-identically.
  supervise_options options;
  options.max_retries = 1;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 2;
  const auto results = net::supervised_remote_sweep(
      {net::host_addr{"127.0.0.1", 1}}, 1, manifest_, options,
      [&](std::uint64_t, rng gen) { return runner_->run(gen); });
  expect_serial(results);
}

TEST_F(RemoteSweep, JournaledRemoteSweepResumesGapOnly) {
  // A journaled distributed sweep fed by a faulted daemon connection, then
  // resumed: the resume replays the journal and fetches only the gap from
  // the network — records_received counts exactly the missing trials.
  const service_process daemon(service_options{});
  const auto hosts = loopback(daemon.port(), 1);
  const std::string path = testing::TempDir() + "/net_resume.ppaj";
  std::remove(path.c_str());
  {
    journal_writer writer(path, journal_header{manifest_.seed, manifest_.trials},
                          /*resume=*/false);
    for (std::uint64_t t = 0; t < 9; ++t) writer.append({t, serial_[t]});
  }
  obs::metrics_registry metrics;
  supervise_options options;
  options.journal_path = path;
  options.resume = true;
  options.journal_tag = manifest_.seed;
  options.faults = {{fault_kind::drop, 0, 1}};
  options.metrics = &metrics;
  const auto results =
      net::supervised_remote_sweep(hosts, 1, manifest_, options);
  expect_serial(results);
  EXPECT_EQ(metrics.counter("fleet.records_received"), manifest_.trials - 9);

  const journal_replay replay = replay_journal(path);
  std::vector<bool> seen(manifest_.trials, false);
  for (const trial_record& r : replay.records) seen[r.trial] = true;
  for (std::uint64_t t = 0; t < manifest_.trials; ++t) EXPECT_TRUE(seen[t]) << t;
  std::remove(path.c_str());
}

TEST_F(RemoteSweep, VersionSkewIsRejectedLoudly) {
  const service_process daemon(service_options{});
  const int fd = net::dial({"127.0.0.1", daemon.port()}, 2000);
  ASSERT_GE(fd, 0);
  net::sweep_request request;
  request.version = net::kNetVersion + 1;
  request.artifact_size = 1;
  request.count = 1;
  const auto payload = net::encode_sweep_request(request);
  net::send_frame(fd, payload.data(), payload.size(), 2000);
  const auto reply = net::recv_frame(fd, net::kMaxControlPayload, 2000);
  ASSERT_GE(reply.size(), 1u);
  EXPECT_EQ(reply[0], static_cast<std::uint8_t>(net::msg_type::err));
  const std::string message(reply.begin() + 1, reply.end());
  EXPECT_NE(message.find("version skew"), std::string::npos) << message;
  close(fd);
}

TEST_F(RemoteSweep, ArtifactChecksumMismatchIsRejectedLoudly) {
  const service_process daemon(service_options{});
  const int fd = net::dial({"127.0.0.1", daemon.port()}, 2000);
  ASSERT_GE(fd, 0);
  net::sweep_request request;
  request.artifact_checksum = 0xdeadbeef;  // not the checksum of the bytes
  request.artifact_size = 4;
  request.seed = 41;
  request.trials = 4;
  request.count = 4;
  const auto payload = net::encode_sweep_request(request);
  net::send_frame(fd, payload.data(), payload.size(), 2000);
  auto reply = net::recv_frame(fd, net::kMaxControlPayload, 2000);
  ASSERT_EQ(reply.size(), 1u);
  ASSERT_EQ(reply[0], static_cast<std::uint8_t>(net::msg_type::need_artifact));
  const std::vector<std::uint8_t> ship = {
      static_cast<std::uint8_t>(net::msg_type::artifact_data), 1, 2, 3, 4};
  net::send_frame(fd, ship.data(), ship.size(), 2000);
  reply = net::recv_frame(fd, net::kMaxControlPayload, 2000);
  ASSERT_GE(reply.size(), 1u);
  EXPECT_EQ(reply[0], static_cast<std::uint8_t>(net::msg_type::err));
  const std::string message(reply.begin() + 1, reply.end());
  EXPECT_NE(message.find("checksum mismatch"), std::string::npos) << message;
  close(fd);
}

}  // namespace
}  // namespace pp::fleet
