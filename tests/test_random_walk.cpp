#include "dynamics/random_walk.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"

namespace pp {
namespace {

TEST(ExactHitting, CliqueIsNMinusOne) {
  // On K_n, each move hits a fixed target with probability 1/(n-1).
  const int n = 10;
  const auto h = exact_classic_hitting_times(make_clique(n), 0);
  for (node_id v = 1; v < n; ++v) {
    EXPECT_NEAR(h[static_cast<std::size_t>(v)], n - 1.0, 1e-9);
  }
  EXPECT_NEAR(h[0], 0.0, 1e-12);
}

TEST(ExactHitting, CycleIsKTimesNMinusK) {
  const int n = 17;
  const graph g = make_cycle(n);
  const auto h = exact_classic_hitting_times(g, 0);
  for (node_id v = 1; v < n; ++v) {
    const double k = std::min<double>(v, n - v);
    EXPECT_NEAR(h[static_cast<std::size_t>(v)], k * (n - k), 1e-8);
  }
}

TEST(ExactHitting, PathEndToEndIsSquared) {
  const int n = 12;
  const auto h = exact_classic_hitting_times(make_path(n), static_cast<node_id>(n - 1));
  EXPECT_NEAR(h[0], (n - 1.0) * (n - 1.0), 1e-8);
}

TEST(ExactHitting, StarLeafToLeaf) {
  // Solving E_centre = 1 + (n-2)/(n-1)·E_leaf with E_leaf = 1 + E_centre:
  // H(centre, leaf) = 2n-3 and H(leaf, leaf') = 2n-2.
  const int n = 9;
  const auto h = exact_classic_hitting_times(make_star(n), 5);
  EXPECT_NEAR(h[1], 2.0 * n - 2.0, 1e-9);
  EXPECT_NEAR(h[0], 2.0 * n - 3.0, 1e-9);
}

TEST(ExactHitting, WorstCaseCycle) {
  const int n = 14;
  const double expected = (n / 2.0) * (n - n / 2.0);
  EXPECT_NEAR(exact_worst_case_hitting_time(make_cycle(n)), expected, 1e-8);
}

TEST(ExactHitting, LollipopIsCubicallyWorse) {
  // H(G) = Θ(n³) on lollipops vs Θ(n²) on paths of the same size.
  const double lolli = exact_worst_case_hitting_time(make_lollipop(16, 16));
  const double path = exact_worst_case_hitting_time(make_path(32));
  EXPECT_GT(lolli, 4.0 * path);
}

TEST(SampledHitting, ClassicMatchesExact) {
  const graph g = make_cycle(12);
  const auto exact = exact_classic_hitting_times(g, 0);
  rng gen(1);
  double total = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(sample_classic_hitting_time(g, 6, 0, gen));
  }
  EXPECT_NEAR(total / trials, exact[6], 0.06 * exact[6]);
}

TEST(SampledHitting, PopulationIsClassicTimesMOverD) {
  // On regular graphs every hold time is Geometric(d/m), so
  // H_P(u,v) = H(u,v)·m/d.
  const int n = 12;
  const graph g = make_cycle(n);
  const auto exact = exact_classic_hitting_times(g, 0);
  rng gen(2);
  double total = 0.0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(sample_population_hitting_time(g, 6, 0, gen));
  }
  const double expected = exact[6] * static_cast<double>(g.num_edges()) / 2.0;
  EXPECT_NEAR(total / trials, expected, 0.07 * expected);
}

TEST(SampledHitting, Lemma17PopulationVsClassic) {
  // H_P(G) <= 27·n·H(G).
  rng gen(3);
  for (const auto& g : {make_cycle(16), make_star(16), make_clique(12)}) {
    const double h_classic = exact_worst_case_hitting_time(g);
    const double h_pop = estimate_worst_case_population_hitting_time(
        g, 10, 200, gen.fork(static_cast<std::uint64_t>(g.num_nodes())));
    EXPECT_LE(h_pop, 27.0 * g.num_nodes() * h_classic);
  }
}

TEST(MeetingTime, Lemma18MeetingVsHitting) {
  // M(u,v) <= 2·H_P(G); on the cycle H_P(G) = (n²/4)·(n/2).
  const int n = 16;
  const graph g = make_cycle(n);
  const double hp = (n * n / 4.0) * (n / 2.0);
  rng gen(4);
  double total = 0.0;
  const int trials = 1500;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(sample_population_meeting_time(g, 0, n / 2, gen));
  }
  EXPECT_LE(total / trials, 2.0 * hp);
}

TEST(MeetingTime, AdjacentWalksMeetFast) {
  const graph g = make_clique(8);
  rng gen(5);
  double total = 0.0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(sample_population_meeting_time(g, 0, 1, gen));
  }
  // On K_n two walks meet when their specific edge among m is drawn; by
  // symmetry E[M] = m = n(n-1)/2.
  EXPECT_NEAR(total / trials, 28.0, 3.0);
}

TEST(MeetingTime, RequiresDistinctStarts) {
  const graph g = make_clique(4);
  rng gen(6);
  EXPECT_THROW(sample_population_meeting_time(g, 2, 2, gen), std::invalid_argument);
}

TEST(CoverTime, CycleMatchesClosedForm) {
  // Classic cover time of the cycle is exactly n(n-1)/2.
  const int n = 14;
  const graph g = make_cycle(n);
  rng gen(7);
  double total = 0.0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(sample_classic_cover_time(g, 0, gen));
  }
  const double expected = n * (n - 1) / 2.0;
  EXPECT_NEAR(total / trials, expected, 0.06 * expected);
}

TEST(CoverTime, CliqueIsCouponCollector) {
  const int n = 12;
  const graph g = make_clique(n);
  rng gen(8);
  double total = 0.0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    total += static_cast<double>(sample_classic_cover_time(g, 0, gen));
  }
  double expected = 0.0;  // (n-1)·H_{n-1}
  for (int i = 1; i < n; ++i) expected += static_cast<double>(n - 1) / i;
  EXPECT_NEAR(total / trials, expected, 0.06 * expected);
}

TEST(ExactHitting, RejectsBadInput) {
  EXPECT_THROW(exact_classic_hitting_times(make_clique(4), 7), std::invalid_argument);
  const graph disconnected = graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(exact_classic_hitting_times(disconnected, 0), std::logic_error);
}

}  // namespace
}  // namespace pp
