// Shared statistical-agreement gates for engine-equivalence tests.
//
// Several engines intentionally trade per-seed bit-identity for throughput
// (the well-mixed batch engine has no edges to seed; reordered runs remap
// the draw-to-edge assignment; the silent-edge scheduler consumes draws in
// a different order).  Their correctness contract is *statistical*: over
// independent trials, the mean stabilization step count must agree with the
// exact per-interaction engine within `kSigmaGate` combined standard
// errors.  This header holds that check — trial counts and the z-threshold
// live here, in one place — for test_wellmixed, test_reorder and
// test_silent; bench/ mirrors the same 3σ convention in its agreement
// gates.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analysis/experiment.h"

namespace pp::stat_gate {

// The agreement threshold in combined standard errors.  3σ keeps the
// false-failure rate of a single gate below ~0.3% while still catching any
// systematic bias of a fraction of a standard error once trial counts are
// in the tens.
inline constexpr double kSigmaGate = 3.0;

// Default trial count for agreement checks: enough that the combined SE is
// a few percent of the mean on the protocols tested here, small enough for
// tier-1 wall clocks.
inline constexpr int kAgreementTrials = 24;

inline double standard_error(const sample_summary& s) {
  return s.count > 0 ? s.stddev / std::sqrt(static_cast<double>(s.count)) : 0.0;
}

// Combined standard error of the difference of two independent means.
inline double combined_sigma(const sample_summary& a, const sample_summary& b) {
  const double se_a = standard_error(a);
  const double se_b = standard_error(b);
  return std::sqrt(se_a * se_a + se_b * se_b);
}

// Both sweeps fully stabilized, nondegenerate spread, and means within
// kSigmaGate combined standard errors.  `label` names the comparison in the
// failure message (e.g. the vertex order or scheduler under test).
inline void expect_step_agreement(const election_summary& baseline,
                                  const election_summary& candidate,
                                  const std::string& label) {
  ASSERT_EQ(baseline.stabilized_fraction, 1.0) << label;
  ASSERT_EQ(candidate.stabilized_fraction, 1.0) << label;
  const double sigma = combined_sigma(baseline.steps, candidate.steps);
  ASSERT_GT(sigma, 0.0) << label;
  EXPECT_LE(std::fabs(baseline.steps.mean - candidate.steps.mean),
            kSigmaGate * sigma)
      << label << ": baseline mean " << baseline.steps.mean
      << " vs candidate mean " << candidate.steps.mean << " ("
      << kSigmaGate << " sigma = " << kSigmaGate * sigma << ")";
}

}  // namespace pp::stat_gate
