// Tests for the extension surfaces: the Corollary 25 regular-graph
// parameterisation, population-model cover times (Lemma 19), the Lemma 43
// greedy tree embedding, the paper-constant protocol preset, and edge cases
// of every protocol on minimal and exotic graphs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/fast_election.h"
#include "core/id_election.h"
#include "core/simulator.h"
#include "core/star_protocol.h"
#include "dynamics/epidemic.h"
#include "dynamics/influence.h"
#include "dynamics/random_walk.h"
#include "graph/generators.h"
#include "graph/metrics.h"

namespace pp {
namespace {

// ---------- Corollary 25 parameterisation ----------

TEST(Corollary25, StreakLengthTracksConductance) {
  // h = offset + ceil(log2(Δ·lg n / β)): the cycle (φ small) needs a longer
  // streak than the clique (φ ~ 1/2).
  const graph cycle = make_cycle(64);
  const graph clique = make_clique(64);
  const double beta_cycle = 2.0 / 32.0;
  const double beta_clique = 32.0;
  const fast_params pc = fast_params::for_regular(cycle, beta_cycle);
  const fast_params pk = fast_params::for_regular(clique, beta_clique);
  EXPECT_GT(pc.h, pk.h);
  // h(G) = O(log log n + log(1/φ)) stays tiny even for the cycle.
  EXPECT_LE(pc.h, 14);
  EXPECT_GE(pk.h, 1);
}

TEST(Corollary25, RejectsIrregularGraphs) {
  EXPECT_THROW(fast_params::for_regular(make_star(8), 1.0), std::invalid_argument);
  EXPECT_THROW(fast_params::for_regular(make_cycle(8), 0.0), std::invalid_argument);
}

TEST(Corollary25, RegularPresetElectsOnRegularFamilies) {
  rng seed(1);
  struct setup {
    graph g;
    double beta;
  };
  std::vector<setup> cases;
  cases.push_back({make_cycle(16), 2.0 / 8.0});
  cases.push_back({make_grid_2d(4, 4, true), 4.0 / 8.0});
  cases.push_back({make_hypercube(4), 1.0});
  for (auto& c : cases) {
    const fast_protocol proto(fast_params::for_regular(c.g, c.beta));
    for (int t = 0; t < 3; ++t) {
      const auto r = run_until_stable(proto, c.g, seed.fork(static_cast<std::uint64_t>(t) + c.g.num_edges()),
                                      {.max_steps = 50'000'000});
      EXPECT_TRUE(r.stabilized);
    }
  }
}

TEST(Corollary25, PaperPresetAlsoElects) {
  // The paper's union-bound constants (offset 8, α = 8) on a small clique.
  const graph g = make_clique(8);
  const double b = estimate_broadcast_time(g, 0, 30, rng(2));
  const fast_protocol proto(fast_params::paper(g, b));
  rng seed(3);
  for (int t = 0; t < 3; ++t) {
    const auto r = run_until_stable(proto, g, seed.fork(t),
                                    {.max_steps = 100'000'000});
    EXPECT_TRUE(r.stabilized);
  }
}

// ---------- population cover time (Lemma 19) ----------

TEST(PopulationCoverTime, RegularGraphIsClassicTimesMOverD) {
  const int n = 12;
  const graph g = make_cycle(n);
  rng gen(4);
  double classic = 0.0;
  double population = 0.0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    classic += static_cast<double>(sample_classic_cover_time(g, 0, gen));
    population += static_cast<double>(sample_population_cover_time(g, 0, gen));
  }
  const double ratio = population / classic;
  // Every move of the walk costs Geometric(d/m) = n/2 steps on the cycle.
  EXPECT_NEAR(ratio, n / 2.0, 0.1 * n / 2.0);
}

TEST(PopulationCoverTime, Lemma19UpperBound) {
  // Cover (and hence visit-every-node) time within O(H·n·log n) steps: use
  // the explicit 54·H·n·log n envelope from the Lemma 19 proof.
  rng gen(5);
  for (const auto& g : {make_cycle(16), make_clique(12), make_star(12)}) {
    const double h = exact_worst_case_hitting_time(g);
    const double n = static_cast<double>(g.num_nodes());
    const double bound = 54.0 * h * n * std::log2(n);
    double total = 0.0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
      total += static_cast<double>(sample_population_cover_time(g, 0, gen));
    }
    EXPECT_LE(total / trials, bound);
  }
}

// ---------- Lemma 43 tree embedding ----------

TEST(EmbedTree, PathIntoClique) {
  const graph g = make_clique(10);
  std::vector<bool> allowed(10, true);
  const graph tree = make_path(6);
  const auto image = embed_tree_greedy(g, allowed, tree);
  ASSERT_EQ(image.size(), 6u);
  for (node_id i = 0; i + 1 < 6; ++i) {
    EXPECT_TRUE(g.has_edge(image[static_cast<std::size_t>(i)],
                           image[static_cast<std::size_t>(i) + 1]));
  }
}

TEST(EmbedTree, ImagesAreDistinctAndAllowed) {
  const graph g = make_clique(12);
  std::vector<bool> allowed(12, false);
  for (node_id v = 3; v < 11; ++v) allowed[static_cast<std::size_t>(v)] = true;
  const graph tree = make_binary_tree(7);
  const auto image = embed_tree_greedy(g, allowed, tree);
  ASSERT_FALSE(image.empty());
  std::vector<bool> used(12, false);
  for (const node_id v : image) {
    EXPECT_TRUE(allowed[static_cast<std::size_t>(v)]);
    EXPECT_FALSE(used[static_cast<std::size_t>(v)]);
    used[static_cast<std::size_t>(v)] = true;
  }
  // Every tree edge maps to a graph edge.
  for (const edge& e : tree.edges()) {
    EXPECT_TRUE(g.has_edge(image[static_cast<std::size_t>(e.u)],
                           image[static_cast<std::size_t>(e.v)]));
  }
}

TEST(EmbedTree, FailsWhenHostTooSmall) {
  const graph g = make_clique(5);
  std::vector<bool> allowed(5, false);
  allowed[0] = allowed[1] = true;
  EXPECT_TRUE(embed_tree_greedy(g, allowed, make_path(3)).empty());
}

TEST(EmbedTree, FailsOnDegreeBottleneck) {
  // A star host cannot hold a path of length 4 (leaves have degree 1).
  const graph g = make_star(8);
  std::vector<bool> allowed(8, true);
  EXPECT_TRUE(embed_tree_greedy(g, allowed, make_path(5)).empty());
  // But it holds any star-shaped tree rooted appropriately.
  EXPECT_FALSE(embed_tree_greedy(g, allowed, make_star(5)).empty());
}

TEST(EmbedTree, Lemma43SurvivorsHoldPolynomialTrees) {
  // On a dense graph at t = 0.1·n·ln n, the non-interacted survivors induce
  // a subgraph containing decent-sized trees — the constructive heart of
  // Lemma 43.
  const node_id n = 256;
  rng gen(6);
  const graph g = make_connected_erdos_renyi(n, 0.5, gen);
  const auto t = static_cast<std::uint64_t>(0.1 * n * std::log(n));
  const auto sched = record_schedule(g, t, gen.fork(1));
  const auto first = first_interaction_steps(sched, n);
  std::vector<bool> survivors(static_cast<std::size_t>(n), false);
  for (node_id v = 0; v < n; ++v) {
    survivors[static_cast<std::size_t>(v)] = first[static_cast<std::size_t>(v)] == 0;
  }
  const auto tree_size = static_cast<node_id>(std::pow(n, 0.4));
  EXPECT_FALSE(embed_tree_greedy(g, survivors, make_binary_tree(tree_size)).empty());
  EXPECT_FALSE(embed_tree_greedy(g, survivors, make_path(tree_size)).empty());
}

// ---------- minimal and exotic graph edge cases ----------

TEST(EdgeCases, TwoNodeGraphAllProtocols) {
  const graph g = make_path(2);
  rng seed(7);
  {
    const beauquier_protocol proto(2);
    const auto r = run_until_stable(proto, g, seed.fork(0));
    EXPECT_TRUE(r.stabilized);
  }
  {
    const id_protocol proto(2);
    const auto r = run_until_stable(proto, g, seed.fork(1), {.max_steps = 1'000'000});
    EXPECT_TRUE(r.stabilized);
  }
  {
    fast_params p;
    p.h = 1;
    p.level_threshold = 1;
    p.max_level = 2;
    const fast_protocol proto(p);
    const auto r = run_until_stable(proto, g, seed.fork(2), {.max_steps = 1'000'000});
    EXPECT_TRUE(r.stabilized);
  }
  {
    const star_protocol proto;
    const auto r = run_until_stable(proto, g, seed.fork(3));
    EXPECT_TRUE(r.stabilized);
    EXPECT_EQ(r.steps, 1u);
  }
}

class ExoticFamilies : public ::testing::TestWithParam<int> {};

TEST_P(ExoticFamilies, BeauquierElectsEverywhere) {
  const int idx = GetParam();
  rng make_gen(30 + idx);
  std::vector<graph> graphs;
  graphs.push_back(make_hypercube(4));
  graphs.push_back(make_barbell(6, 3));
  graphs.push_back(make_lollipop(8, 8));
  graphs.push_back(make_complete_bipartite(5, 9));
  graphs.push_back(make_binary_tree(15));
  graphs.push_back(make_random_regular(16, 3, make_gen));
  const graph& g = graphs[static_cast<std::size_t>(idx)];

  const beauquier_protocol proto(g.num_nodes());
  rng seed(40 + idx);
  for (int t = 0; t < 4; ++t) {
    const auto r = run_beauquier_event_driven(proto, g, seed.fork(t), UINT64_MAX);
    EXPECT_TRUE(r.stabilized);
    EXPECT_GE(r.leader, 0);
    EXPECT_LT(r.leader, g.num_nodes());
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, ExoticFamilies, ::testing::Range(0, 6));

TEST(EdgeCases, FastProtocolLevelNeverExceedsMax) {
  fast_params p;
  p.h = 1;
  p.level_threshold = 1;
  p.max_level = 3;
  const fast_protocol proto(p);
  const graph g = make_clique(6);
  std::vector<fast_protocol::state_type> config(6);
  for (node_id v = 0; v < 6; ++v) config[static_cast<std::size_t>(v)] = proto.initial_state(v);
  edge_scheduler sched(g, rng(8));
  for (int step = 0; step < 20000; ++step) {
    const interaction it = sched.next();
    proto.interact(config[static_cast<std::size_t>(it.initiator)],
                   config[static_cast<std::size_t>(it.responder)]);
    for (const auto& s : config) {
      ASSERT_LE(static_cast<int>(s.level), p.max_level);
      ASSERT_LT(static_cast<int>(s.streak), p.h + 1);
    }
  }
}

TEST(EdgeCases, IdProtocolMaxBitLength) {
  const id_protocol proto(62);
  auto a = proto.initial_state(0);
  auto b = proto.initial_state(1);
  for (int i = 0; i < 62; ++i) proto.interact(a, b);
  EXPECT_GE(a.id, proto.id_threshold());
  EXPECT_LT(a.id, 2 * proto.id_threshold());  // no overflow
  EXPECT_LT(b.id, 2 * proto.id_threshold());
}

TEST(EdgeCases, BroadcastOnTwoNodes) {
  const graph g = make_path(2);
  const auto r = simulate_broadcast(g, 0, rng(9));
  EXPECT_GE(r.completion_step, 1u);
  EXPECT_EQ(r.infection_step[1], r.completion_step);
}

}  // namespace
}  // namespace pp
