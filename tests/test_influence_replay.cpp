// Differential validation of the multigraph-of-influencers semantics (§7.1):
// a node's state at step t is fully determined by its influencer
// interactions — replaying only those must reproduce the state that a full
// replay of the schedule produces, for every protocol.
#include <gtest/gtest.h>

#include "core/beauquier.h"
#include "core/fast_election.h"
#include "core/id_election.h"
#include "core/star_protocol.h"
#include "dynamics/influence.h"
#include "graph/generators.h"

namespace pp {
namespace {

template <typename P>
typename P::state_type full_replay_state(const P& proto,
                                         const recorded_schedule& sched,
                                         node_id n, node_id v) {
  std::vector<typename P::state_type> config(static_cast<std::size_t>(n));
  for (node_id u = 0; u < n; ++u) {
    config[static_cast<std::size_t>(u)] = proto.initial_state(u);
  }
  for (std::size_t i = 0; i < sched.length(); ++i) {
    proto.interact(config[static_cast<std::size_t>(sched.initiators[i])],
                   config[static_cast<std::size_t>(sched.responders[i])]);
  }
  return config[static_cast<std::size_t>(v)];
}

template <typename P>
void check_replay_equivalence(const P& proto, const graph& g,
                              std::uint64_t steps, std::uint64_t seed) {
  const node_id n = g.num_nodes();
  const auto sched = record_schedule(g, steps, rng(seed));
  for (node_id v = 0; v < n; v += std::max(1, n / 8)) {
    const auto full = full_replay_state(proto, sched, n, v);
    const auto partial = replay_influencer_state(proto, sched, n, v);
    EXPECT_EQ(proto.encode(full), proto.encode(partial))
        << "node " << v << " diverged";
  }
}

TEST(InfluencerReplay, IndicesAreSortedAndTouchTheCone) {
  const graph g = make_cycle(8);
  const auto sched = record_schedule(g, 100, rng(1));
  const auto idx = influencer_interaction_indices(sched, 8, 3);
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
  EXPECT_LE(idx.size(), sched.length());
  // The last interaction of node 3 (if any) must be included.
  for (std::size_t i = sched.length(); i-- > 0;) {
    if (sched.initiators[i] == 3 || sched.responders[i] == 3) {
      EXPECT_TRUE(std::find(idx.begin(), idx.end(), i) != idx.end());
      break;
    }
  }
}

TEST(InfluencerReplay, EmptyScheduleGivesInitialState) {
  const beauquier_protocol proto(4);
  recorded_schedule sched;
  const auto s = replay_influencer_state(proto, sched, 4, 2);
  EXPECT_EQ(proto.encode(s), proto.encode(proto.initial_state(2)));
}

TEST(InfluencerReplay, BeauquierMatchesFullReplay) {
  check_replay_equivalence(beauquier_protocol(16), make_cycle(16), 800, 2);
  check_replay_equivalence(beauquier_protocol(12), make_clique(12), 500, 3);
}

TEST(InfluencerReplay, IdProtocolMatchesFullReplay) {
  check_replay_equivalence(id_protocol(6), make_cycle(12), 600, 4);
  check_replay_equivalence(id_protocol(8), make_star(10), 400, 5);
}

TEST(InfluencerReplay, FastProtocolMatchesFullReplay) {
  fast_params p;
  p.h = 2;
  p.level_threshold = 4;
  p.max_level = 16;
  check_replay_equivalence(fast_protocol(p), make_clique(10), 2000, 6);
  check_replay_equivalence(fast_protocol(p), make_grid_2d(4, 4, true), 2000, 7);
}

TEST(InfluencerReplay, StarProtocolMatchesFullReplay) {
  check_replay_equivalence(star_protocol{}, make_star(12), 60, 8);
}

TEST(InfluencerReplay, SubscheduleIsStrictlySmallerEarlyOn) {
  // At small t, most interactions are outside any single node's causal cone.
  const node_id n = 64;
  const graph g = make_clique(n);
  const auto sched = record_schedule(g, 64, rng(9));
  std::size_t total = 0;
  for (node_id v = 0; v < n; v += 8) {
    total += influencer_interaction_indices(sched, n, v).size();
  }
  EXPECT_LT(total / 8, sched.length() / 2);
}

}  // namespace
}  // namespace pp
