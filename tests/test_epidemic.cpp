#include "dynamics/epidemic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/metrics.h"
#include "support/stats.h"

namespace pp {
namespace {

double harmonic(int n) {
  double h = 0.0;
  for (int i = 1; i <= n; ++i) h += 1.0 / i;
  return h;
}

TEST(Broadcast, InfectsEveryone) {
  const graph g = make_cycle(20);
  const auto r = simulate_broadcast(g, 3, rng(1));
  int at_zero = 0;
  for (node_id v = 0; v < 20; ++v) {
    if (r.infection_step[static_cast<std::size_t>(v)] == 0) ++at_zero;
  }
  EXPECT_EQ(at_zero, 1);  // only the source
  EXPECT_GT(r.completion_step, 0u);
}

TEST(Broadcast, InfectionStepsBoundedByCompletion) {
  const graph g = make_clique(12);
  const auto r = simulate_broadcast(g, 0, rng(2));
  std::uint64_t max_step = 0;
  for (const auto s : r.infection_step) max_step = std::max(max_step, s);
  EXPECT_EQ(max_step, r.completion_step);
}

TEST(Broadcast, CliqueMatchesClosedForm) {
  // E[T(v)] on K_n is exactly (n-1)·H_{n-1}.
  const int n = 64;
  const graph g = make_clique(n);
  const double expected = (n - 1) * harmonic(n - 1);
  const double measured = estimate_broadcast_time(g, 0, 3000, rng(3));
  EXPECT_NEAR(measured, expected, 0.04 * expected);
}

TEST(Broadcast, CycleMatchesClosedForm) {
  // The infected set is an arc with a 2-edge boundary at every stage, so
  // E[T(v)] = (n-1)·m/2 = n(n-1)/2 exactly.
  const int n = 32;
  const graph g = make_cycle(n);
  const double expected = n * (n - 1) / 2.0;
  const double measured = estimate_broadcast_time(g, 5, 2000, rng(4));
  EXPECT_NEAR(measured, expected, 0.05 * expected);
}

TEST(Broadcast, StarFromCentreMatchesClosedForm) {
  // From the centre: coupon collector over leaves, E = (n-1)·H_{n-1}.
  const int n = 40;
  const graph g = make_star(n);
  const double expected = (n - 1) * harmonic(n - 1);
  const double measured = estimate_broadcast_time(g, 0, 3000, rng(5));
  EXPECT_NEAR(measured, expected, 0.05 * expected);
}

TEST(Broadcast, NaiveAndEventDrivenAgree) {
  // Identical distribution; compare means and dispersion over many trials.
  for (const auto& g : {make_cycle(12), make_star(10), make_clique(8)}) {
    std::vector<double> naive;
    std::vector<double> event;
    rng gen(6);
    for (int t = 0; t < 1200; ++t) {
      naive.push_back(static_cast<double>(
          simulate_broadcast_naive(g, 0, gen.fork(2 * t)).completion_step));
      event.push_back(static_cast<double>(
          simulate_broadcast(g, 0, gen.fork(2 * t + 1)).completion_step));
    }
    const auto a = summarize(naive);
    const auto b = summarize(event);
    EXPECT_NEAR(a.mean, b.mean, 4 * (a.ci95_halfwidth + b.ci95_halfwidth))
        << "graph with n=" << g.num_nodes();
    EXPECT_NEAR(a.median, b.median, 0.25 * a.mean);
  }
}

TEST(Broadcast, Theorem6UpperBoundHolds) {
  // B(G) <= m·max{6 ln n, D} + 2 (Lemma 8).
  rng gen(7);
  const std::vector<graph> graphs{make_cycle(48), make_clique(24), make_star(32),
                                  make_grid_2d(6, 6, true)};
  for (const auto& g : graphs) {
    const double n = g.num_nodes();
    const double m = static_cast<double>(g.num_edges());
    const double d = diameter(g);
    const double bound = m * std::max(6.0 * std::log(n), d) + 2.0;
    const double measured =
        estimate_broadcast_time(g, 0, 200, gen.fork(static_cast<std::uint64_t>(m)));
    EXPECT_LE(measured, bound) << "n=" << n << " m=" << m;
  }
}

TEST(Broadcast, Lemma12LowerBoundHolds) {
  // B(G) >= (m/Δ)·ln(n-1); allow 5% Monte-Carlo slack on the estimate.
  rng gen(8);
  const std::vector<graph> graphs{make_cycle(40), make_clique(24), make_star(40),
                                  make_grid_2d(6, 6, true)};
  for (const auto& g : graphs) {
    const double bound = static_cast<double>(g.num_edges()) / g.max_degree() *
                         std::log(static_cast<double>(g.num_nodes() - 1));
    const auto est = estimate_worst_case_broadcast_time(
        g, 200, 16, gen.fork(static_cast<std::uint64_t>(g.num_nodes())));
    EXPECT_GE(est.value, 0.95 * bound) << "n=" << g.num_nodes();
  }
}

TEST(Broadcast, WorstCaseEstimateAtLeastSingleSource) {
  const graph g = make_lollipop(8, 12);
  const double single = estimate_broadcast_time(g, 0, 100, rng(9));
  const auto worst = estimate_worst_case_broadcast_time(g, 100, 30, rng(9));
  EXPECT_GE(worst.value, 0.8 * single);
  EXPECT_GE(worst.value, worst.min_value);
}

TEST(Propagation, DistanceKStepsIncrease) {
  const graph g = make_cycle(40);
  const auto dist = bfs_distances(g, 0);
  rng gen(10);
  double t5 = 0.0;
  double t20 = 0.0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const auto r = simulate_broadcast(g, 0, gen.fork(t));
    t5 += static_cast<double>(distance_k_propagation_step(r, dist, 5));
    t20 += static_cast<double>(distance_k_propagation_step(r, dist, 20));
  }
  EXPECT_LT(t5 / trials, t20 / trials);
}

TEST(Propagation, MissingDistanceGivesInfinity) {
  const graph g = make_clique(6);  // diameter 1
  const auto dist = bfs_distances(g, 0);
  const auto r = simulate_broadcast(g, 0, rng(11));
  EXPECT_EQ(distance_k_propagation_step(r, dist, 3), static_cast<std::uint64_t>(-1));
}

TEST(Propagation, Lemma14LowerBoundOnCycle) {
  // P[T_k < km/(Δe³)] <= 1/n for k >= ln n; on a cycle Δ = 2.
  const int n = 64;
  const graph g = make_cycle(n);
  const auto dist = bfs_distances(g, 0);
  const int k = 16;
  const double threshold =
      static_cast<double>(k) * g.num_edges() / (2.0 * std::exp(3.0));
  rng gen(12);
  int below = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    const auto r = simulate_broadcast(g, 0, gen.fork(t));
    if (static_cast<double>(distance_k_propagation_step(r, dist, k)) < threshold) {
      ++below;
    }
  }
  EXPECT_LE(below, trials / 16);
}

TEST(Broadcast, DisconnectedGraphThrows) {
  const graph g = graph::from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(simulate_broadcast(g, 0, rng(13)), std::logic_error);
}

TEST(Broadcast, DeterministicGivenSeed) {
  const graph g = make_grid_2d(5, 5, false);
  const auto a = simulate_broadcast(g, 7, rng(14));
  const auto b = simulate_broadcast(g, 7, rng(14));
  EXPECT_EQ(a.completion_step, b.completion_step);
  EXPECT_EQ(a.infection_step, b.infection_step);
}

}  // namespace
}  // namespace pp
