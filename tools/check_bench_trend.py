#!/usr/bin/env python3
"""Regression gate for the BENCH_*.json artefacts against committed baselines.

check_bench_json.py validates each artefact's *shape*; this tool compares its
*content* against the baseline committed under bench/baselines/ so a PR that
silently degrades a gate or drops a result row fails in CI:

  * acceptance booleans (pass/equal/stabilized/enforced flags) must not
    degrade — a baseline `true` that turns `false` is a regression, while a
    baseline `false` turning `true` is an improvement and passes;
  * machine-dependent measurements (wall-clock seconds, steps/sec, speedups,
    overhead fractions, core counts, deviation z-scores) are skipped — those
    are gated by the benches' own acceptance booleans, not by this tool;
  * step statistics (trajectory-dependent counts and means: different libm
    builds resample trajectories) must stay within a relative tolerance,
    25% by default;
  * everything else — bench names, row labels, n/m/trial counts, packing
    widths, structural sizes, the key sets and array lengths themselves —
    must match exactly.

Baselines are refreshed EXPLICITLY and never silently: run

    tools/check_bench_trend.py --refresh build/BENCH_*.json

after generating artefacts with the same PP_BENCH_SCALE as CI (0.1), and
commit the diff under bench/baselines/ with a justification.  A candidate
artefact with no committed baseline is an error for the same reason.

Usage: check_bench_trend.py [--refresh] [--baseline-dir DIR]
                            [--tolerance FRAC] FILE [FILE...]
Exits nonzero on any regression (or, with --refresh, never — it writes).
"""

import argparse
import json
import math
import os
import shutil
import sys

# Leaf keys whose values depend on the machine, load or clock — skipped
# entirely (substring match on the key name).
SKIP_SUBSTRINGS = (
    "seconds",
    "per_sec",
    "speedup",
    "overhead",
    "frac",
    "sigmas",
    "cores",
)

# Leaf keys whose values ride the sampled trajectory (step counts, means,
# sample counts): compared within --tolerance instead of exactly, because a
# different libm (CI image vs dev box) legitimately resamples every run.
TOLERANT_SUBSTRINGS = (
    "steps",
    "mean",
    "stddev",
    "samples",
    "bytes_per_step",
)


def leaf_key(path):
    """The final key name of a JSON path like $.rates[3].steps."""
    tail = path.rsplit(".", 1)[-1]
    return tail.split("[", 1)[0]


def classify(path):
    key = leaf_key(path)
    if any(s in key for s in SKIP_SUBSTRINGS):
        return "skip"
    if any(s in key for s in TOLERANT_SUBSTRINGS):
        return "tolerant"
    return "exact"


def compare(baseline, candidate, path, tolerance, errors):
    if isinstance(baseline, dict) and isinstance(candidate, dict):
        for key in sorted(set(baseline) | set(candidate)):
            if key not in candidate:
                errors.append(f"{path}.{key}: key dropped (present in baseline)")
            elif key not in baseline:
                errors.append(
                    f"{path}.{key}: new key (absent from baseline) — refresh "
                    "the baseline explicitly"
                )
            else:
                compare(baseline[key], candidate[key], f"{path}.{key}",
                        tolerance, errors)
        return
    if isinstance(baseline, list) and isinstance(candidate, list):
        if len(baseline) != len(candidate):
            errors.append(
                f"{path}: result rows changed ({len(baseline)} baseline vs "
                f"{len(candidate)} candidate)"
            )
            return
        for index, (b, c) in enumerate(zip(baseline, candidate)):
            compare(b, c, f"{path}[{index}]", tolerance, errors)
        return
    if type(baseline) is not type(candidate) and not (
        isinstance(baseline, (int, float))
        and isinstance(candidate, (int, float))
        and not isinstance(baseline, bool)
        and not isinstance(candidate, bool)
    ):
        errors.append(
            f"{path}: type changed ({type(baseline).__name__} -> "
            f"{type(candidate).__name__})"
        )
        return

    kind = classify(path)
    if kind == "skip":
        return
    if isinstance(baseline, bool):
        if baseline and not candidate:
            errors.append(f"{path}: acceptance degraded (baseline true -> false)")
        return
    if isinstance(baseline, (int, float)):
        b, c = float(baseline), float(candidate)
        if kind == "tolerant":
            scale = max(abs(b), abs(c), 1e-9)
            if abs(b - c) / scale > tolerance:
                errors.append(
                    f"{path}: outside {tolerance:.0%} tolerance "
                    f"(baseline {baseline} vs candidate {candidate})"
                )
        elif not math.isclose(b, c, rel_tol=1e-12, abs_tol=0.0):
            errors.append(
                f"{path}: exact-match key changed "
                f"(baseline {baseline} vs candidate {candidate})"
            )
        return
    if baseline != candidate:
        errors.append(
            f"{path}: changed (baseline {baseline!r} vs candidate {candidate!r})"
        )


def default_baseline_dir():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(here, os.pardir, "bench", "baselines")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="candidate BENCH_*.json files")
    parser.add_argument("--refresh", action="store_true",
                        help="overwrite the baselines with the candidates")
    parser.add_argument("--baseline-dir", default=default_baseline_dir())
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative tolerance for step statistics")
    args = parser.parse_args(argv[1:])

    if args.refresh:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in args.files:
            target = os.path.join(args.baseline_dir, os.path.basename(path))
            shutil.copyfile(path, target)
            print(f"{path}: baseline refreshed -> {target}")
        return 0

    failed = False
    for path in args.files:
        baseline_path = os.path.join(args.baseline_dir, os.path.basename(path))
        if not os.path.exists(baseline_path):
            print(
                f"{path}: no committed baseline at {baseline_path} — run "
                "with --refresh and commit it",
                file=sys.stderr,
            )
            failed = True
            continue
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        with open(path, "r", encoding="utf-8") as handle:
            candidate = json.load(handle)
        errors = []
        compare(baseline, candidate, "$", args.tolerance, errors)
        if errors:
            failed = True
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            print(f"{path}: ok (baseline {os.path.relpath(baseline_path)})")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
