#!/usr/bin/env python3
"""Validator for the Chrome trace-event JSON the flight recorder emits
(src/obs/trace.h, `popsim --trace FILE`).

Checks the catapult contract chrome://tracing and Perfetto rely on, plus the
recorder's own guarantees:

  * strict JSON (literal NaN/Infinity rejected), top-level object with a
    "traceEvents" list of objects;
  * every event carries name/ph/ts/pid/tid with the right types, ph one of
    B E i C M, instants with "s";
  * timestamps non-decreasing per (pid, tid) lane in file order (metadata
    events excluded) — the writer appends in emission order and sidecar
    merges keep worker events on their own pid;
  * B/E spans balanced per (pid, tid) with matching names (LIFO nesting),
    nothing left open at end of file.

--strict turns the tolerated conditions (unknown ph, empty trace) into
errors.  --require NAME[:key=value] (repeatable) additionally demands at
least one event with that name — and, when given, an args entry equal to
value — which is how CI asserts a fault-injected sweep recorded the
worker_kill / worker_respawn / chunk_reassign instants for the faulted slot.

Usage: check_trace.py [--strict] [--require NAME[:key=value]] FILE [FILE...]
Exits nonzero on any violation.
"""

import argparse
import json
import math
import sys

PHASES = {"B", "E", "i", "C", "M"}


def reject_nonfinite(item, path):
    if isinstance(item, float) and not math.isfinite(item):
        raise ValueError(f"non-finite number at {path}")
    if isinstance(item, dict):
        for key, value in item.items():
            reject_nonfinite(value, f"{path}.{key}")
    if isinstance(item, list):
        for index, value in enumerate(item):
            reject_nonfinite(value, f"{path}[{index}]")


def parse_requirement(spec):
    """NAME or NAME:key=value -> (name, key or None, value or None)."""
    name, sep, rest = spec.partition(":")
    if not name:
        raise argparse.ArgumentTypeError(f"empty event name in {spec!r}")
    if not sep:
        return (name, None, None)
    key, eq, value = rest.partition("=")
    if not key or not eq:
        raise argparse.ArgumentTypeError(
            f"{spec!r}: requirement args must look like NAME:key=value"
        )
    return (name, key, value)


def arg_matches(event, key, value):
    args = event.get("args")
    if not isinstance(args, dict) or key not in args:
        return False
    # Trace args are numbers or strings; compare through str so
    # --require worker_kill:slot=1 matches the numeric arg 1.
    return str(args[key]) == value


def check(path, strict, requirements):
    errors = []
    warnings = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(
                handle,
                parse_constant=lambda token: (_ for _ in ()).throw(
                    ValueError(f"non-finite constant {token!r}")
                ),
            )
    except (OSError, ValueError) as error:
        return [f"invalid JSON: {error}"], []
    try:
        reject_nonfinite(doc, "$")
    except ValueError as error:
        return [str(error)], []

    if not isinstance(doc, dict):
        return ["top level must be an object"], []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ['missing "traceEvents" list'], []
    if not events:
        warnings.append("empty traceEvents")

    last_ts = {}  # (pid, tid) -> ts
    open_spans = {}  # (pid, tid) -> [names]
    satisfied = [False] * len(requirements)

    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where} is not an object")
            continue
        name = event.get("name")
        ph = event.get("ph")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing or empty name")
            continue
        if not isinstance(ph, str) or not ph:
            errors.append(f"{where} ({name}): missing ph")
            continue
        if ph not in PHASES:
            warnings.append(f"{where} ({name}): unknown ph {ph!r}")
            continue
        missing = [k for k in ("ts", "pid", "tid") if not isinstance(
            event.get(k), int)]
        if missing:
            errors.append(
                f"{where} ({name}): non-integer {'/'.join(missing)}")
            continue
        if ph == "M":
            continue  # metadata carries no timeline meaning
        lane = (event["pid"], event["tid"])
        ts = event["ts"]
        if lane in last_ts and ts < last_ts[lane]:
            errors.append(
                f"{where} ({name}): ts {ts} < {last_ts[lane]} on pid {lane[0]}"
                f" tid {lane[1]}"
            )
        last_ts[lane] = ts
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            errors.append(f'{where} ({name}): instant without "s" scope')
        if ph == "B":
            open_spans.setdefault(lane, []).append(name)
        elif ph == "E":
            stack = open_spans.get(lane, [])
            if not stack:
                errors.append(
                    f"{where} ({name}): E without open B on pid {lane[0]}"
                    f" tid {lane[1]}"
                )
            elif stack[-1] != name:
                errors.append(
                    f"{where}: E {name!r} closes open B {stack[-1]!r} on"
                    f" pid {lane[0]} tid {lane[1]}"
                )
            else:
                stack.pop()
        for slot, (rname, key, value) in enumerate(requirements):
            if satisfied[slot] or name != rname:
                continue
            if key is None or arg_matches(event, key, value):
                satisfied[slot] = True

    for (pid, tid), stack in sorted(open_spans.items()):
        for name in stack:
            errors.append(f"unclosed span {name!r} on pid {pid} tid {tid}")
    for slot, (rname, key, value) in enumerate(requirements):
        if not satisfied[slot]:
            want = rname if key is None else f"{rname}:{key}={value}"
            errors.append(f"required event {want!r} not found")

    if strict:
        errors.extend(warnings)
        warnings = []
    return errors, warnings


def main(argv):
    parser = argparse.ArgumentParser(
        description="Validate flight-recorder Chrome trace-event JSON."
    )
    parser.add_argument("--strict", action="store_true",
                        help="treat tolerated conditions as errors")
    parser.add_argument("--require", action="append", default=[],
                        type=parse_requirement, metavar="NAME[:key=value]",
                        help="demand at least one matching event (repeatable)")
    parser.add_argument("files", nargs="+", metavar="FILE")
    options = parser.parse_args(argv)

    status = 0
    for path in options.files:
        errors, warnings = check(path, options.strict, options.require)
        for warning in warnings:
            print(f"{path}: warning: {warning}", file=sys.stderr)
        if errors:
            status = 1
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
