#!/usr/bin/env python3
"""Validator for .ppaj fleet-sweep journals (src/fleet/journal.h).

Checks the binary layout end to end: the 32-byte header (magic "PPAJ",
endianness tag, version, reserved field, sweep tag, trial count), then every
record frame (u32 length == 29, payload, u64 FNV-1a of the payload) and the
trial index ranges inside each payload.  By default a torn tail — the writer
died mid-record — is reported but tolerated, exactly the replay contract of
the C++ reader; --strict makes any torn tail or checksum failure fatal, and
--complete additionally requires every trial of the header's count to be
present (the state of a journal after a finished or resumed sweep, which is
what CI asserts).

Usage: check_journal.py [--strict] [--complete] FILE [FILE...]
Exits nonzero on any violation.
"""

import argparse
import struct
import sys

HEADER_BYTES = 32
MAGIC = 0x4A415050  # "PPAJ" little-endian
ENDIAN_TAG = 0x01020304
VERSION = 1
PAYLOAD_BYTES = 29  # u64 trial, u64 steps, u64 distinct, i32 leader, u8 stabilized
RECORD_BYTES = 4 + PAYLOAD_BYTES + 8


def fnv1a64(data):
    h = 0xCBF29CE484222325
    for byte in data:
        h = ((h ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def check(path, strict, complete):
    errors = []
    warnings = []
    with open(path, "rb") as handle:
        blob = handle.read()

    if len(blob) < HEADER_BYTES:
        return [f"{len(blob)} bytes is too short for a journal header"], []
    magic, endian, version, reserved, tag, trials = struct.unpack_from(
        "<IIIIQQ", blob, 0
    )
    if magic != MAGIC:
        return [f"bad magic 0x{magic:08x} (want 0x{MAGIC:08x})"], []
    if endian != ENDIAN_TAG:
        errors.append(f"foreign endianness tag 0x{endian:08x}")
    if version != VERSION:
        errors.append(f"unsupported format version {version}")
    if reserved != 0:
        errors.append(f"nonzero reserved header field 0x{reserved:08x}")
    if errors:
        return errors, warnings

    seen = set()
    offset = HEADER_BYTES
    corrupt = 0
    torn = False
    while offset + RECORD_BYTES <= len(blob):
        (length,) = struct.unpack_from("<I", blob, offset)
        if length != PAYLOAD_BYTES:
            torn = True
            break
        payload = blob[offset + 4 : offset + 4 + PAYLOAD_BYTES]
        (stored,) = struct.unpack_from("<Q", blob, offset + 4 + PAYLOAD_BYTES)
        offset += RECORD_BYTES
        if fnv1a64(payload) != stored:
            corrupt += 1
            continue
        trial = struct.unpack_from("<Q", payload, 0)[0]
        if trial >= trials:
            errors.append(f"record at {offset - RECORD_BYTES}: trial {trial} "
                          f">= header trial count {trials}")
            continue
        seen.add(trial)
    if offset != len(blob):
        torn = True

    if corrupt:
        message = f"{corrupt} record(s) failed their FNV-1a checksum"
        (errors if strict else warnings).append(message)
    if torn:
        message = "torn tail (writer died mid-record)"
        (errors if strict else warnings).append(message)
    if complete:
        missing = trials - len(seen)
        if missing:
            errors.append(f"{missing} of {trials} trial(s) missing "
                          f"(journal is not a completed sweep)")
    if not errors:
        warnings.append(
            f"ok: tag={tag} trials={trials} records={len(seen)} unique"
        )
    return errors, warnings


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--strict", action="store_true",
                        help="torn tails and checksum failures are fatal")
    parser.add_argument("--complete", action="store_true",
                        help="require every trial of the sweep to be present")
    parser.add_argument("files", nargs="+", metavar="FILE")
    args = parser.parse_args(argv[1:])

    failed = False
    for path in args.files:
        try:
            errors, notes = check(path, args.strict, args.complete)
        except OSError as error:
            errors, notes = [str(error)], []
        for note in notes:
            print(f"{path}: {note}")
        for error in errors:
            failed = True
            print(f"{path}: {error}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
