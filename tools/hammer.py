#!/usr/bin/env python3
"""Concurrency hammer for the resident popsimd daemon (src/fleet/service.h).

Fires N concurrent sweep requests for the same artifact chunk at a daemon
and asserts every connection streamed back byte-identical records: the
fork-per-request model must not let concurrent sweeps interleave, corrupt
or reorder each other's streams, and the checksum-keyed cache must serve
every connection the same prepared sweep.

    $ popsim --serve 0 &          # prints: popsimd listening port=PORT
    $ python3 tools/hammer.py --port PORT --artifact sweep.ppaf \
          --concurrency 100 --trials 5 --seed 7

While the sweep threads are in flight the hammer also exercises the v3
control plane: a STATS snapshot is taken mid-run and again after every
stream has drained, and the final snapshot must satisfy the daemon's own
accounting invariants (requests >= concurrency, cache hits + misses ==
requests, at least one cache entry).  --stats-out FILE dumps the final
snapshot for downstream validation (tools/check_stats.py).

Speaks the wire protocol (src/fleet/wire.h + net.h, version 3) directly
from the stdlib: 'u32 length | payload | u64 fnv1a64(payload)' frames,
REQ_SWEEP / NEED_ARTIFACT / ARTIFACT_DATA / OK_CACHED / ERR handshake plus
the STATS / STATS_OK control pair, then raw 41-byte record frames to EOF.
Exits nonzero (with the offending thread's error) on any divergence, short
stream, ERR reply, timeout or counter-invariant violation.
"""

import argparse
import json
import socket
import struct
import sys
import threading

FNV_BASIS = 0xcbf29ce484222325
FNV_PRIME = 0x100000001b3
MASK64 = (1 << 64) - 1

NET_VERSION = 3  # src/fleet/net.h kNetVersion — exact match required

REQ_SWEEP = 0x01
ARTIFACT_DATA = 0x02
STATS = 0x04
OK_CACHED = 0x10
NEED_ARTIFACT = 0x11
ERR = 0x12
STATS_OK = 0x14

RECORD_PAYLOAD = 29  # sweep.h trial record
RECORD_FRAME = 4 + RECORD_PAYLOAD + 8


def fnv1a64(data: bytes) -> int:
    h = FNV_BASIS
    for byte in data:
        h = ((h ^ byte) * FNV_PRIME) & MASK64
    return h


def frame(payload: bytes) -> bytes:
    return struct.pack("<I", len(payload)) + payload + struct.pack(
        "<Q", fnv1a64(payload))


def recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise RuntimeError(
                f"connection closed mid-frame ({len(buf)}/{n} bytes)")
        buf += chunk
    return buf


def recv_frame(sock: socket.socket) -> bytes:
    (length,) = struct.unpack("<I", recv_exact(sock, 4))
    if length > (1 << 30):
        raise RuntimeError(f"oversized frame ({length} bytes)")
    payload = recv_exact(sock, length)
    (stored,) = struct.unpack("<Q", recv_exact(sock, 8))
    if stored != fnv1a64(payload):
        raise RuntimeError("frame checksum mismatch")
    return payload


def sweep_request(artifact: bytes, trials: int, seed: int) -> bytes:
    return struct.pack(
        "<BIQQIQQQQQQBI",
        REQ_SWEEP,
        NET_VERSION,
        fnv1a64(artifact),
        len(artifact),
        0,  # slot (no faults: every thread may share it)
        seed,
        trials,
        0,  # base
        trials,  # count: the whole sweep in one chunk
        MASK64,  # max_steps
        0,  # wellmixed_batch
        0,  # scheduler: step
        0,  # no fault specs
    )


def fetch_stats(host, port, timeout):
    """One STATS round-trip; returns the parsed metrics-JSON snapshot."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(frame(struct.pack("<BI", STATS, NET_VERSION)))
        reply = recv_frame(sock)
        if not reply or reply[0] != STATS_OK:
            if reply and reply[0] == ERR:
                raise RuntimeError("daemon: " + reply[1:].decode(errors="replace"))
            raise RuntimeError(f"unexpected STATS reply {reply[:1].hex()}")
        snapshot = json.loads(reply[1:].decode())
        if snapshot.get("popsim_metrics") != 1:
            raise RuntimeError("STATS payload is not a metrics snapshot")
        return snapshot


def one_request(host, port, request_frame, artifact_frame, timeout):
    """Runs one full handshake + record stream; returns the record bytes.

    Both frames are prebuilt by main(): pure-Python fnv1a64 over a multi-MB
    artifact is the slow path here, and hashing it once per *process*
    instead of once per thread is what lets 100 GIL-sharing clients all
    finish their handshakes well inside the daemon's idle deadline.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(request_frame)
        reply = recv_frame(sock)
        if reply and reply[0] == NEED_ARTIFACT:
            sock.sendall(artifact_frame)
            reply = recv_frame(sock)
        if not reply or reply[0] != OK_CACHED:
            if reply and reply[0] == ERR:
                raise RuntimeError("daemon: " + reply[1:].decode(errors="replace"))
            raise RuntimeError(f"unexpected handshake reply {reply[:1].hex()}")
        records = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return records
            records += chunk


def check_counters(snapshot, concurrency):
    """Asserts the daemon's accounting invariants on a final STATS snapshot.

    Returns a list of violation strings (empty = sane).  hits + misses ==
    requests is exact by construction: every decoded REQ_SWEEP takes
    exactly one of the two cache paths.
    """
    counters = snapshot.get("counters", {})
    problems = []

    def need(key):
        if key not in counters:
            problems.append(f"missing counter {key}")
            return 0
        return counters[key]

    requests = need("fleet.net.requests")
    hits = need("fleet.cache.hits")
    misses = need("fleet.cache.misses")
    stats_reqs = need("fleet.net.stats_requests")
    if requests < concurrency:
        problems.append(
            f"fleet.net.requests = {requests}, want >= {concurrency}")
    if hits + misses != requests:
        problems.append(
            f"cache hits {hits} + misses {misses} != requests {requests}")
    if stats_reqs < 1:
        problems.append("fleet.net.stats_requests = 0 after a STATS call")
    entries = snapshot.get("gauges", {}).get("fleet.cache.entries", 0)
    if entries < 1:
        problems.append(f"fleet.cache.entries = {entries}, want >= 1")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(
        description="assert N concurrent popsimd sweeps stream identically")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--artifact", required=True, help=".ppaf file to sweep")
    parser.add_argument("--concurrency", type=int, default=100)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--timeout", type=float, default=60.0,
                        help="per-socket-operation timeout in seconds")
    parser.add_argument("--stats-out", default="",
                        help="write the final STATS snapshot JSON to FILE")
    args = parser.parse_args()

    with open(args.artifact, "rb") as f:
        artifact = f.read()
    request_frame = frame(sweep_request(artifact, args.trials, args.seed))
    artifact_frame = frame(bytes([ARTIFACT_DATA]) + artifact)

    results = [None] * args.concurrency
    errors = [None] * args.concurrency

    def worker(i):
        try:
            results[i] = one_request(args.host, args.port, request_frame,
                                     artifact_frame, args.timeout)
        except Exception as e:  # noqa: BLE001 - report, don't unwind a thread
            errors[i] = str(e)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(args.concurrency)]
    for t in threads:
        t.start()

    # Mid-run STATS: the control plane must answer while sweep forks are in
    # flight — a read-only snapshot, racing the counters is fine; only the
    # final snapshot is held to the invariants.
    try:
        fetch_stats(args.host, args.port, args.timeout)
    except Exception as e:  # noqa: BLE001
        print(f"hammer: mid-run STATS failed: {e}", file=sys.stderr)
        for t in threads:
            t.join()
        return 1

    for t in threads:
        t.join()

    failed = [(i, e) for i, e in enumerate(errors) if e is not None]
    if failed:
        for i, e in failed[:10]:
            print(f"hammer: request {i} failed: {e}", file=sys.stderr)
        print(f"hammer: {len(failed)}/{args.concurrency} requests failed",
              file=sys.stderr)
        return 1

    expected = args.trials * RECORD_FRAME
    if len(results[0]) != expected:
        print(f"hammer: stream is {len(results[0])} bytes, "
              f"want {args.trials} x {RECORD_FRAME} = {expected}",
              file=sys.stderr)
        return 1
    divergent = [i for i, r in enumerate(results) if r != results[0]]
    if divergent:
        print(f"hammer: {len(divergent)} of {args.concurrency} responses "
              f"diverge from request 0 (first: {divergent[0]})",
              file=sys.stderr)
        return 1

    try:
        snapshot = fetch_stats(args.host, args.port, args.timeout)
    except Exception as e:  # noqa: BLE001
        print(f"hammer: final STATS failed: {e}", file=sys.stderr)
        return 1
    problems = check_counters(snapshot, args.concurrency)
    if problems:
        for p in problems:
            print(f"hammer: counter check: {p}", file=sys.stderr)
        return 1
    if args.stats_out:
        with open(args.stats_out, "w") as f:
            json.dump(snapshot, f, indent=1, sort_keys=True)
            f.write("\n")

    print(f"hammer: ok — {args.concurrency} concurrent requests, "
          f"{expected} identical bytes each; "
          f"{snapshot['counters']['fleet.net.requests']} requests served, "
          f"{snapshot['counters']['fleet.cache.hits']} cache hits")
    return 0


if __name__ == "__main__":
    sys.exit(main())
