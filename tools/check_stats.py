#!/usr/bin/env python3
"""Validator for a popsimd STATS snapshot (src/fleet/net.h STATS/STATS_OK,
the daemon's obs::metrics_registry rendered as metrics JSON).

Checks the snapshot a live daemon hands back — as captured by
`tools/hammer.py --stats-out FILE` or a raw STATS round-trip:

  * strict JSON (literal NaN/Infinity rejected), top-level object with
    "popsim_metrics": 1 and counters/gauges objects of non-negative
    integers;
  * every counter and gauge the daemon pre-registers at startup is
    present, so a snapshot is complete from the very first request —
    a missing fleet.net.* or fleet.cache.* key means the wire payload
    was truncated or the daemon silently dropped a metric;
  * the daemon's own accounting invariants hold: cache hits + misses ==
    decoded requests (every REQ_SWEEP takes exactly one cache path),
    runners reaped <= spawned, and live gauges are non-negative.

Usage: check_stats.py FILE [FILE...]
Exits nonzero on any violation.
"""

import json
import math
import sys

# Counters the daemon pre-registers in its constructor (src/fleet/service.cpp)
# so snapshots are complete before the first request lands.
REQUIRED_COUNTERS = [
    "fleet.cache.evictions",
    "fleet.cache.hits",
    "fleet.cache.insertions",
    "fleet.cache.misses",
    "fleet.net.artifact_bytes_received",
    "fleet.net.connections_accepted",
    "fleet.net.pings",
    "fleet.net.rejects",
    "fleet.net.requests",
    "fleet.net.stats_requests",
    "fleet.runners_reaped",
    "fleet.runners_spawned",
]

REQUIRED_GAUGES = [
    "fleet.cache.bytes",
    "fleet.cache.entries",
    "fleet.children_live",
    "fleet.net.connections",
]


def reject_nonfinite(item, path):
    if isinstance(item, float) and not math.isfinite(item):
        raise ValueError(f"non-finite number at {path}")
    if isinstance(item, dict):
        for key, value in item.items():
            reject_nonfinite(value, f"{path}.{key}")
    if isinstance(item, list):
        for index, value in enumerate(item):
            reject_nonfinite(value, f"{path}[{index}]")


def check(path):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(
                handle,
                parse_constant=lambda token: (_ for _ in ()).throw(
                    ValueError(f"non-finite constant {token!r}")
                ),
            )
    except (OSError, ValueError) as error:
        return [f"invalid JSON: {error}"]
    try:
        reject_nonfinite(doc, "$")
    except ValueError as error:
        return [str(error)]

    if not isinstance(doc, dict):
        return ["top level must be an object"]
    if doc.get("popsim_metrics") != 1:
        errors.append('missing "popsim_metrics": 1 marker')

    def section(name, required):
        table = doc.get(name)
        if not isinstance(table, dict):
            errors.append(f'missing "{name}" object')
            return {}
        for key, value in table.items():
            if not isinstance(value, int) or isinstance(value, bool):
                errors.append(f"{name}.{key} is not an integer: {value!r}")
            elif value < 0:
                errors.append(f"{name}.{key} is negative: {value}")
        for key in required:
            if key not in table:
                errors.append(f"{name} missing required key {key!r}")
        return table

    counters = section("counters", REQUIRED_COUNTERS)
    gauges = section("gauges", REQUIRED_GAUGES)
    if errors:
        return errors

    requests = counters["fleet.net.requests"]
    hits = counters["fleet.cache.hits"]
    misses = counters["fleet.cache.misses"]
    if hits + misses != requests:
        errors.append(
            f"cache hits {hits} + misses {misses} != requests {requests}")
    if counters["fleet.runners_reaped"] > counters["fleet.runners_spawned"]:
        errors.append(
            f"runners reaped {counters['fleet.runners_reaped']} > "
            f"spawned {counters['fleet.runners_spawned']}")
    if counters["fleet.cache.insertions"] < gauges["fleet.cache.entries"]:
        errors.append(
            f"cache entries {gauges['fleet.cache.entries']} exceed "
            f"insertions {counters['fleet.cache.insertions']}")
    return errors


def main(argv):
    if not argv:
        print("usage: check_stats.py FILE [FILE...]", file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        errors = check(path)
        if errors:
            status = 1
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
