#!/usr/bin/env python3
"""Schema gate for the BENCH_*.json artefacts CI uploads.

Every bench artefact must be valid strict JSON (no NaN/Infinity anywhere —
a bench that emits them is reporting garbage), be a top-level object with a
non-empty "bench" name, and carry at least one non-empty array of result
rows whose entries are objects.  Per-bench required keys pin the fields the
dashboards and acceptance gates read, so a refactor that drops one fails in
CI instead of silently uploading an empty artefact.

Usage: check_bench_json.py FILE [FILE...]   (exits nonzero on any violation)
"""

import json
import math
import sys

# Keys the downstream consumers of each known bench rely on.  An unknown
# bench name only has to satisfy the generic schema.
REQUIRED_KEYS = {
    "engine": ["results"],
    "locality": ["equivalence", "matrix", "equivalence_pass", "locality_pass"],
    "wellmixed": ["agreement", "rates", "agreement_pass", "scale_pass"],
    "silent": ["agreement", "rates", "agreement_pass", "scale_pass"],
    "fleet": [
        "results",
        "determinism_pass",
        "scaling_pass",
        "w2_speedup_tuned",
        "journal_overhead_frac",
        "journal_overhead_pass",
        "remote_overhead_frac",
        "remote_overhead_pass",
    ],
    "star": [
        "equivalence",
        "star_elections",
        "sustained",
        "star_speedup",
        "equivalence_pass",
        "speedup_pass",
    ],
    "obs": [
        "results",
        "overhead_disabled_frac",
        "overhead_enabled_frac",
        "overhead_windowed_frac",
        "progress_overhead_frac",
        "disabled_pass",
        "enabled_pass",
        "windowed_pass",
        "progress_pass",
        "determinism_pass",
        "window_determinism_pass",
    ],
}


def reject_nonfinite(value, path):
    """json.load with parse_constant catches literal NaN/Infinity tokens;
    this sweep also catches non-finite floats arriving any other way."""
    if isinstance(value, float) and not math.isfinite(value):
        raise ValueError(f"non-finite number at {path}")
    if isinstance(value, dict):
        for key, item in value.items():
            reject_nonfinite(item, f"{path}.{key}")
    elif isinstance(value, list):
        for index, item in enumerate(value):
            reject_nonfinite(item, f"{path}[{index}]")


def check(path):
    with open(path, "r", encoding="utf-8") as handle:
        try:
            doc = json.load(
                handle,
                parse_constant=lambda token: (_ for _ in ()).throw(
                    ValueError(f"non-finite constant {token!r}")
                ),
            )
        except ValueError as error:
            return [f"invalid JSON: {error}"]

    errors = []
    try:
        reject_nonfinite(doc, "$")
    except ValueError as error:
        errors.append(str(error))

    if not isinstance(doc, dict):
        return errors + ["top level must be an object"]
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        errors.append('missing or empty "bench" name')

    arrays = {k: v for k, v in doc.items() if isinstance(v, list)}
    rows = [row for v in arrays.values() for row in v]
    if not arrays or not rows:
        errors.append("no non-empty result array")
    for key, value in arrays.items():
        for index, row in enumerate(value):
            if not isinstance(row, dict):
                errors.append(f'"{key}"[{index}] is not an object')
                break

    for key in REQUIRED_KEYS.get(bench, []):
        if key not in doc:
            errors.append(f'bench "{bench}" is missing required key "{key}"')
    return errors


def main(argv):
    if len(argv) < 2:
        print("usage: check_bench_json.py FILE [FILE...]", file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors = check(path)
        if errors:
            failed = True
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
